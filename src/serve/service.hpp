// Asynchronous ACOPF solve service: request queue -> dynamic micro-batching
// -> fused batch solve -> futures.
//
// Callers submit individual SolveRequests and get std::futures back. A
// background dispatcher thread coalesces concurrently-pending requests into
// fused BatchAdmmSolver micro-batches: it waits up to `batching_window` from
// the moment the oldest pending request arrived for the batch to fill to
// `max_batch_size`, pops the largest same-fingerprint group (requests
// against different cases never share a batch), and solves the group as one
// ScenarioSet. Per-step kernel-launch cost of the fused solve is constant
// in the batch size (PR 1), which is what makes coalescing pay: B requests
// in one batch issue roughly max(iterations) instead of sum(iterations)
// launches.
//
// Warm starting: unless a request bypasses the cache, the dispatcher looks
// its loads up in a SolutionCache (nearest-load-neighbor under the case's
// structural fingerprint) and seeds the batch slot from the cached iterate
// — the paper's tracking warm start applied to serving. Converged results
// are exported back into the cache.
//
// Admission control: the queue is bounded; submit() throws CapacityError
// once `max_queue_depth` requests are pending — pending meaning accepted
// and not yet fulfilled, wherever they sit (main queue, a shard's queue,
// or in flight) — shed-on-arrival, so backpressure reaches the caller
// synchronously and nothing half-accepted lingers. drain() stops admission
// and blocks until every accepted request is fulfilled; the destructor
// drains then joins every thread.
//
// Multi-device routing: the service owns a DevicePool of
// `ServiceOptions::num_devices` devices, one solve worker per device. The
// dispatcher appends each popped micro-batch to a shared dispatch queue
// and the next idle device takes the oldest batch — the least-loaded
// (idle) shard always wins, the pick is work-conserving (no batch ever
// waits behind a busy device while another sits idle), and up to
// num_devices micro-batches solve concurrently instead of serializing
// behind one device. Kernel launches are attributed per shard
// (ServiceStats::per_shard) and in aggregate (ServiceStats::launch_stats),
// and never mix with other solvers' work in process-wide counters.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "admm/batch_state.hpp"
#include "admm/params.hpp"
#include "device/device.hpp"
#include "device/pool.hpp"
#include "grid/network.hpp"
#include "obs/expo.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/watchdog.hpp"
#include "serve/clock.hpp"
#include "serve/request.hpp"
#include "serve/solution_cache.hpp"
#include "serve/stats.hpp"
#include "serve/timeline.hpp"

namespace gridadmm::scenario {
class ScenarioSet;
}

namespace gridadmm::serve {

struct ServiceOptions {
  /// Most requests one micro-batch may coalesce.
  int max_batch_size = 16;
  /// How long the dispatcher waits (from the oldest pending request's
  /// arrival) for a batch to fill before dispatching a partial one.
  double batching_window_seconds = 0.002;
  /// Admission bound: submit() sheds with CapacityError beyond this many
  /// pending requests.
  int max_queue_depth = 256;
  /// Warm-start cache sizing and neighbor distance.
  CacheOptions cache;
  /// Batch memory layout for the fused micro-batch solves (see
  /// scenario::BatchSolveOptions::layout). Interleaved vectorizes the
  /// elementwise kernels across the batch's requests; results are
  /// identical either way.
  admm::BatchLayout layout = admm::BatchLayout::kScenarioMajor;
  /// Branch-pack factor of the fused micro-batch solves' TRON branch phase
  /// (see scenario::BatchSolveOptions::branch_pack). Results are identical
  /// for every value.
  int branch_pack = 1;
  /// Devices in the service-owned pool. Micro-batches are routed to the
  /// least-loaded device, so up to num_devices batches solve concurrently.
  int num_devices = 1;
  /// Worker threads per pool device (0 = hardware concurrency split evenly
  /// across the pool).
  int device_workers = 0;
  /// Telemetry clock (null = steady clock). Scheduling always uses the
  /// steady clock; see serve/clock.hpp.
  std::shared_ptr<const Clock> clock;
  /// Bound on retained latency samples for the percentile telemetry.
  int latency_sample_capacity = 4096;
  /// Enables the process-wide obs::Tracer at construction, so the request
  /// lifecycle (admit -> queue -> dispatch -> per-shard solve -> fulfill)
  /// lands in the Chrome trace. Equivalent to GRIDADMM_TRACE=1; the same
  /// plumbing pattern as layout/branch_pack.
  bool trace = false;
  /// Per-scenario convergence sampling interval of the fused micro-batch
  /// solves (see scenario::BatchSolveOptions::convergence_sample_interval);
  /// each SolveResult then carries its slot's trajectory. 0 = off.
  int convergence_sample_interval = 0;

  // ---- Fault tolerance (DESIGN.md §12) ----
  /// Fused-solve re-attempts per micro-batch group when the failure is a
  /// TransientDeviceError (injected or real). Permanent errors never
  /// retry — they bisect (groups) or fail (solo requests) immediately.
  int max_retries = 2;
  /// Exponential backoff between transient retries: attempt k sleeps
  /// base * 2^k plus up to 50% deterministic jitter, capped by
  /// retry_backoff_max_seconds. 0 retries immediately (tests).
  double retry_backoff_seconds = 0.002;
  double retry_backoff_max_seconds = 0.25;
  /// Consecutive transient attempt failures that trip a shard's circuit
  /// breaker into quarantine (successes reset the count).
  int quarantine_threshold = 3;
  /// How long a quarantined shard sits out before taking one half-open
  /// probe batch (steady clock; queued work flows to healthy shards
  /// meanwhile via the shared dispatch queue).
  double quarantine_backoff_seconds = 0.25;
  /// Degraded-mode rung: a non-converged request whose sampled trajectory
  /// obs::should_escalate flags gets one solo re-solve, warm-started from
  /// its failed iterate with the iteration budget multiplied by
  /// escalation_budget_boost. Needs convergence_sample_interval > 0.
  bool escalation_retry = false;
  double escalation_budget_boost = 4.0;

  // ---- Engine router (DESIGN.md §13, ROADMAP item 5) ----
  /// Last rung of the escalation ladder: a request still non-converged
  /// after the fused batch solve and (when stall-flagged) the boosted solo
  /// retry is re-solved by the warm-started MiniIPM fallback engine
  /// (scenario::solve_scenario_ipm), seeded from its latest failed ADMM
  /// iterate. Success fulfills the future converged with
  /// SolveResult::engine == SolveEngine::kIpm; a fallback failure surfaces
  /// as a typed ConvergenceError (or NumericalError) on the future instead
  /// of a silently non-converged result. Off by default: with the router
  /// disabled, results are bit-identical to the pure-ADMM path and the
  /// fallback engine is never constructed.
  bool engine_fallback = false;
  /// Wall-clock budget per IPM re-solve in seconds (0 = unlimited). A
  /// deadline-carrying request is additionally clamped to its remaining
  /// time, so an escalation never blows a deadline admission promised to
  /// enforce; a request whose deadline already passed at escalation pickup
  /// is shed as a deadline miss instead of rescued late.
  double ipm_budget_seconds = 0.0;
  /// Fallback engine convergence knobs (scenario::IpmEngineOptions).
  double ipm_tolerance = 1e-6;
  int ipm_max_iterations = 500;

  // ---- SLO observability layer (DESIGN.md §11) ----
  /// Enables the SLO layer: per-request stage timelines, per-stage latency
  /// histograms, and the sliding-window burn-rate monitor. When off, the
  /// layer costs one pointer load per fulfilled request and solves are
  /// bit-identical either way.
  bool slo = false;
  /// Declared objectives (latency ceiling, shed budget, windows). Only
  /// read when `slo` is true.
  obs::SloObjectives slo_objectives;
  /// Ring/bucket geometry of the monitor's sliding windows.
  obs::SloWindowOptions slo_window;
  /// How often the maintenance thread re-evaluates the objectives (gauge
  /// refresh + breach/recovery transitions); <= 0 = only on /slo scrapes.
  double slo_eval_interval_seconds = 1.0;
  /// A busy dispatcher/worker thread silent longer than this trips
  /// /healthz to 503 (idle threads are always healthy).
  double watchdog_stall_seconds = 30.0;
  /// Exposition endpoint port: -1 = no endpoint (default), 0 = ephemeral
  /// (SolveService::expo()->port() reports the bound one), else fixed.
  int expo_port = -1;
  /// Endpoint bind address. Loopback by default: the endpoint has no
  /// authentication, so exposing it beyond the host is an explicit choice.
  std::string expo_host = "127.0.0.1";
  /// When non-empty, the maintenance thread appends one JSONL metrics
  /// snapshot to this path every `metrics_snapshot_interval_seconds` (and
  /// the destructor appends a final one). Complements the GRIDADMM_METRICS
  /// exit dump with an in-run time series.
  std::string metrics_snapshot_path;
  double metrics_snapshot_interval_seconds = 0.0;
};

class SolveService {
 public:
  /// `base` is the default case requests solve when they carry no network;
  /// `params` the batch-wide ADMM controls (per-request ScenarioControls
  /// override termination knobs).
  SolveService(grid::Network base, admm::AdmmParams params, ServiceOptions options = {});
  SolveService(const SolveService&) = delete;
  SolveService& operator=(const SolveService&) = delete;
  /// Drains accepted work, then stops the dispatcher.
  ~SolveService();

  /// Enqueues one request. Throws CapacityError when the queue is full and
  /// ValidationError on malformed input (bad load vector size, out-of-range
  /// outage branch); both are synchronous, nothing is enqueued. The future
  /// is fulfilled by the dispatcher (with a SolveResult, or the exception
  /// the batch solve raised).
  std::future<SolveResult> submit(SolveRequest request);

  /// Stops admission and blocks until every accepted request is fulfilled.
  /// Subsequent submits throw CapacityError; drain() is idempotent.
  void drain();

  /// Value snapshot of the telemetry (thread-safe).
  [[nodiscard]] ServiceStats stats() const;

  [[nodiscard]] const grid::Network& base_network() const { return base_; }
  [[nodiscard]] const admm::AdmmParams& params() const { return params_; }
  [[nodiscard]] const ServiceOptions& options() const { return options_; }
  /// The pool's first device (single-device compatibility accessor).
  [[nodiscard]] device::Device& device() { return pool_->device(0); }
  [[nodiscard]] device::DevicePool& pool() { return *pool_; }
  [[nodiscard]] SolutionCache& cache() { return cache_; }
  /// The service's metrics registry (admission counters, latency and
  /// occupancy histograms, queue gauges). Expose via
  /// metrics().expose_prometheus() or metrics().snapshot_json(); gauges are
  /// refreshed by stats(). The exact ring-buffer percentiles stay on
  /// ServiceStats — the registry's histogram percentiles are the bucketed
  /// exposition-friendly approximation of the same series.
  [[nodiscard]] const obs::MetricsRegistry& metrics() const { return metrics_; }
  /// The SLO monitor (null unless ServiceOptions::slo). evaluate() through
  /// this pointer and the /slo endpoint see the same windows.
  [[nodiscard]] obs::SloMonitor* slo() { return slo_.get(); }
  /// The exposition endpoint (null unless ServiceOptions::expo_port >= 0);
  /// expo()->port() reports the bound port when 0 (ephemeral) was asked.
  [[nodiscard]] const obs::ExpoServer* expo() const { return expo_.get(); }
  /// The liveness watchdog backing /healthz.
  [[nodiscard]] const obs::Watchdog& watchdog() const { return watchdog_; }

 private:
  struct Pending {
    SolveRequest request;
    std::promise<SolveResult> promise;
    std::uint64_t fingerprint = 0;  ///< structural key incl. outage branch
    double submit_time = 0.0;       ///< injected clock
    std::chrono::steady_clock::time_point arrival;  ///< scheduling clock
    std::uint64_t id = 0;           ///< trace correlation id ("req" span arg)
    /// Stage stamps on the trace clock; admit_ns doubles as the
    /// serve.queue span start (the non-drift invariant).
    RequestTimeline timeline;
    /// Warm-start seed, looked up once on the first solve attempt and
    /// reused across retries/bisection so re-attempts stay deterministic.
    CacheHit seed;
    bool seed_resolved = false;
  };

  /// One popped micro-batch, routed to a shard's solve worker.
  struct Batch {
    std::vector<Pending> requests;
    std::uint64_t id = 0;
  };

  /// Shard circuit-breaker state (DESIGN.md §12). Guarded by mu_.
  enum class ShardState { kHealthy = 0, kQuarantined = 1, kHalfOpen = 2 };
  struct ShardHealth {
    ShardState state = ShardState::kHealthy;
    int consecutive_failures = 0;  ///< transient attempt failures since success
    std::chrono::steady_clock::time_point reopen{};  ///< half-open eligibility
  };

  /// Mutable bookkeeping shared by every fused-solve attempt of one
  /// micro-batch; committed to live_ under mu_ once the batch resolves.
  struct BatchContext {
    std::uint64_t batch_id = 0;
    int shard = 0;
    bool timeline_on = false;
    double dispatch_time = 0.0;
    std::uint64_t dispatch_ns = 0;
    std::uint64_t form_ns = 0;     ///< latest group's formation stamp
    device::LaunchStats launches;  ///< accumulated across all attempts
    int attempts = 0;              ///< fused solves issued (escalations excluded)
    bool solved_any = false;       ///< at least one fused attempt succeeded
    int transient_attempts = 0;    ///< attempts lost to TransientDeviceError
    bool exhausted_transient = false;  ///< a group ran out of transient retries
    std::size_t accepted = 0;      ///< requests that reached the solve stage
    std::size_t completed = 0;
    std::size_t failed_form = 0;   ///< failures during ScenarioSet formation
    std::size_t failed_solve = 0;  ///< failures during/after the fused solve
    std::size_t deadline_shed = 0;
    std::uint64_t bisections = 0;
    std::uint64_t escalations = 0;
    std::uint64_t escalations_recovered = 0;
    /// Engine split of `completed` (DESIGN.md §13); the three always sum
    /// to `completed` for this batch.
    std::size_t completed_admm = 0;
    std::size_t completed_escalated_admm = 0;
    std::size_t completed_ipm = 0;
    std::uint64_t ipm_attempts = 0;  ///< IPM-rung re-solves started
    std::uint64_t ipm_failures = 0;  ///< IPM-rung typed failures (in failed_solve too)
    std::vector<double> latencies;
  };

  /// What the shard worker feeds the circuit breaker after a batch.
  struct BatchOutcome {
    int transient_attempts = 0;
    bool exhausted_transient = false;
    bool solved_any = false;  ///< at least one fused attempt ran to completion
  };

  void dispatcher_main();
  void shard_worker_main(int shard);
  void maintenance_main();
  void append_metrics_snapshot();
  /// Pops the front request's fingerprint group, up to max_batch_size, in
  /// arrival order. Caller holds mu_.
  std::vector<Pending> pop_batch_locked();
  BatchOutcome process_batch(Batch batch, int shard);
  /// Solves `members` (indices into `batch`) as one group: retry with
  /// backoff on TransientDeviceError, bisect on permanent errors until the
  /// poison request fails alone. Fulfills every member's future.
  void solve_group(std::vector<Pending>& batch, std::vector<std::size_t> members,
                   BatchContext& ctx);
  /// One fused solve over `members`; fulfills futures on success, throws
  /// the solver's error on failure (futures untouched).
  void attempt_members(std::vector<Pending>& batch, const std::vector<std::size_t>& members,
                       const scenario::ScenarioSet& set, BatchContext& ctx);
  /// Fails one request's future with `error`, stamping its timeline and
  /// stage histograms so failure is visible, not absent (ISSUE 9).
  void fail_request(Pending& p, std::exception_ptr error, bool reached_solve,
                    BatchContext& ctx);
  /// Transitions a shard's circuit breaker, emitting the counter, gauge,
  /// trace instant, and log line. Caller holds mu_.
  void transition_shard_locked(int shard, ShardState to);
  /// Workers a new batch could go to right now: healthy, half-open, or
  /// quarantined past reopen. Caller holds mu_.
  int available_workers_locked(std::chrono::steady_clock::time_point now) const;
  void record_latency_locked(double seconds);
  /// Memoized structural fingerprint for a request's network (the base
  /// case's is precomputed; foreign networks are hashed once and pinned).
  std::uint64_t fingerprint_of(const std::shared_ptr<const grid::Network>& network);

  grid::Network base_;
  admm::AdmmParams params_;
  ServiceOptions options_;
  std::shared_ptr<const grid::Network> base_shared_;  ///< aliases base_
  std::uint64_t base_fingerprint_ = 0;
  std::vector<bool> base_bridges_;  ///< bridge bitmap for outage validation

  /// Fingerprints memoized by Network address; the shared_ptr pin keeps the
  /// address from being reused while the memo entry lives. Bounded (cleared
  /// wholesale past the bound) so a client churning networks cannot grow it
  /// without limit.
  std::mutex memo_mu_;
  std::unordered_map<const grid::Network*,
                     std::pair<std::shared_ptr<const grid::Network>, std::uint64_t>>
      fingerprint_memo_;
  std::shared_ptr<const Clock> clock_;
  std::unique_ptr<device::DevicePool> pool_;
  SolutionCache cache_;

  mutable std::mutex mu_;
  std::condition_variable cv_work_;   ///< queue became non-empty / state change
  std::condition_variable cv_shard_;  ///< the dispatch queue gained a batch
  std::condition_variable cv_idle_;   ///< nothing pending anywhere
  std::deque<Pending> queue_;
  std::deque<Batch> dispatched_;      ///< popped batches awaiting an idle device
  int busy_workers_ = 0;              ///< device workers currently inside a solve
  int pending_total_ = 0;             ///< accepted requests not yet fulfilled
  ServiceStats live_;                 ///< counters (percentiles filled on snapshot)
  std::vector<double> latency_samples_;
  std::size_t latency_next_ = 0;      ///< ring-buffer cursor
  std::uint64_t next_batch_id_ = 1;
  std::uint64_t next_request_id_ = 1;  ///< trace correlation ids (under mu_)
  std::vector<ShardHealth> shard_health_;  ///< circuit breakers, one per shard
  bool draining_ = false;
  bool shutdown_ = false;
  std::thread dispatcher_;
  std::vector<std::thread> shard_workers_;

  /// Metrics registry and its hot-path instruments (pointers stay valid for
  /// the registry's lifetime; updates are lock-free atomics).
  obs::MetricsRegistry metrics_;
  obs::Counter* m_submitted_ = nullptr;
  obs::Counter* m_shed_ = nullptr;
  obs::Counter* m_completed_ = nullptr;
  obs::Counter* m_failed_ = nullptr;
  obs::Counter* m_batches_ = nullptr;
  obs::Histogram* m_latency_ = nullptr;
  obs::Histogram* m_occupancy_ = nullptr;
  obs::Gauge* m_queue_depth_ = nullptr;
  obs::Gauge* m_in_flight_ = nullptr;
  // Fault-tolerance instruments (DESIGN.md §12).
  obs::Counter* m_drain_shed_ = nullptr;
  obs::Counter* m_deadline_shed_ = nullptr;
  obs::Counter* m_retries_ = nullptr;
  obs::Counter* m_quarantine_ = nullptr;
  obs::Counter* m_escalations_ = nullptr;
  obs::Counter* m_failed_form_ = nullptr;   ///< serve_failures_by_stage_form_total
  obs::Counter* m_failed_solve_ = nullptr;  ///< serve_failures_by_stage_solve_total
  std::vector<obs::Gauge*> m_shard_state_;  ///< one per shard
  // Engine-router instruments (DESIGN.md §13), indexed by SolveEngine.
  obs::Counter* m_engine_completed_[3] = {};  ///< serve_engine_<name>_completed_total
  obs::Histogram* m_engine_latency_[3] = {};  ///< serve_latency_<name>_seconds
  obs::Counter* m_ipm_failures_ = nullptr;    ///< serve_engine_ipm_failures_total

  // ---- SLO observability layer (all owned here; null/absent when off) ----
  std::unique_ptr<obs::SloMonitor> slo_;  ///< null unless options_.slo
  /// Per-stage latency histograms, RequestTimeline stage order (only
  /// created when options_.slo).
  obs::Histogram* m_stage_[RequestTimeline::kStageCount] = {};
  obs::Watchdog watchdog_;
  int wd_dispatcher_ = -1;
  int wd_maintenance_ = -1;
  std::vector<int> wd_shards_;
  bool attached_dump_ = false;  ///< registered with the GRIDADMM_METRICS dump
  std::unique_ptr<obs::ExpoServer> expo_;
  std::mutex maintenance_mu_;
  std::condition_variable cv_maintenance_;
  bool maintenance_stop_ = false;
  std::thread maintenance_;
};

}  // namespace gridadmm::serve
