#include "serve/solution_cache.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/error.hpp"

namespace gridadmm::serve {

SolutionCache::SolutionCache(CacheOptions options) : options_(options) {
  require(options_.capacity >= 0, "SolutionCache: capacity must be non-negative");
  require(std::isfinite(options_.max_distance) && options_.max_distance >= 0.0,
          "SolutionCache: max_distance must be finite and non-negative");
}

double SolutionCache::load_distance(std::span<const double> pd_a, std::span<const double> qd_a,
                                    std::span<const double> pd_b, std::span<const double> qd_b) {
  if (pd_a.size() != pd_b.size() || qd_a.size() != qd_b.size()) {
    return std::numeric_limits<double>::infinity();
  }
  double d = 0.0;
  for (std::size_t i = 0; i < pd_a.size(); ++i) d = std::max(d, std::abs(pd_a[i] - pd_b[i]));
  for (std::size_t i = 0; i < qd_a.size(); ++i) d = std::max(d, std::abs(qd_a[i] - qd_b[i]));
  return d;
}

CacheHit SolutionCache::lookup(std::uint64_t key, std::span<const double> pd,
                               std::span<const double> qd) {
  std::lock_guard<std::mutex> lock(mu_);
  CacheHit hit;
  auto bucket = entries_.find(key);
  if (bucket != entries_.end()) {
    Entry* best = nullptr;
    double best_distance = std::numeric_limits<double>::infinity();
    for (auto& entry : bucket->second) {
      const double d = load_distance(pd, qd, entry.pd, entry.qd);
      if (d < best_distance) {
        best_distance = d;
        best = &entry;
      }
    }
    if (best != nullptr && best_distance <= options_.max_distance) {
      best->last_used = ++tick_;
      hit.iterate = best->iterate;
      hit.distance = best_distance;
    }
  }
  if (hit.iterate != nullptr) {
    ++hits_;
  } else {
    ++misses_;
  }
  return hit;
}

void SolutionCache::insert(std::uint64_t key, std::vector<double> pd, std::vector<double> qd,
                           std::shared_ptr<const admm::WarmStartIterate> iterate) {
  require(iterate != nullptr, "SolutionCache::insert: null iterate");
  if (options_.capacity == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (auto bucket = entries_.find(key); bucket != entries_.end()) {
    for (auto& entry : bucket->second) {
      if (entry.pd == pd && entry.qd == qd) {
        entry.iterate = std::move(iterate);
        entry.last_used = ++tick_;
        return;
      }
    }
  }
  // Evict before touching the key's bucket: the LRU victim may be that very
  // bucket's only entry, in which case eviction erases the map node and any
  // earlier-acquired bucket reference would dangle.
  if (size_ >= options_.capacity) evict_lru_locked();
  Entry entry;
  entry.pd = std::move(pd);
  entry.qd = std::move(qd);
  entry.iterate = std::move(iterate);
  entry.last_used = ++tick_;
  entries_[key].push_back(std::move(entry));
  ++size_;
}

void SolutionCache::evict_lru_locked() {
  std::uint64_t oldest = std::numeric_limits<std::uint64_t>::max();
  std::unordered_map<std::uint64_t, std::vector<Entry>>::iterator victim_bucket = entries_.end();
  std::size_t victim_index = 0;
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    for (std::size_t i = 0; i < it->second.size(); ++i) {
      if (it->second[i].last_used < oldest) {
        oldest = it->second[i].last_used;
        victim_bucket = it;
        victim_index = i;
      }
    }
  }
  if (victim_bucket == entries_.end()) return;
  auto& vec = victim_bucket->second;
  vec.erase(vec.begin() + static_cast<std::ptrdiff_t>(victim_index));
  if (vec.empty()) entries_.erase(victim_bucket);
  --size_;
}

int SolutionCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return size_;
}

std::uint64_t SolutionCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::uint64_t SolutionCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

}  // namespace gridadmm::serve
