// Warm-start solution cache: the paper's tracking warm start applied to
// serving.
//
// Entries are keyed by a structural key (grid::network_fingerprint of the
// request's case, mixed with its outage branch) and store the load vector
// the solve ran at plus the exported full ADMM iterate. A lookup scans the
// key's entries for the nearest load vector (L-infinity distance in per-unit
// over pd and qd) and returns its iterate when the distance is within
// `max_distance` — close enough that seeding from it converges in fewer
// iterations than a cold start, exactly the paper's perturbed-instance
// tracking result. Eviction is LRU over all keys with a bounded entry count.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "admm/warm_start.hpp"

namespace gridadmm::serve {

struct CacheOptions {
  /// Maximum resident entries across all keys (0 disables the cache).
  int capacity = 64;
  /// Maximum per-bus load distance (L-infinity over pd and qd, per-unit) for
  /// a cached iterate to count as a warm-start neighbor.
  double max_distance = 0.1;
};

/// One successful lookup: the iterate plus how far away its loads were.
struct CacheHit {
  std::shared_ptr<const admm::WarmStartIterate> iterate;
  double distance = 0.0;
};

/// Thread-safe (single mutex; lookups and insertions are O(entries-per-key)
/// linear scans, which is the right trade at serving cache sizes).
class SolutionCache {
 public:
  explicit SolutionCache(CacheOptions options);

  /// Nearest-load-neighbor lookup under `key`. Returns an empty optional-like
  /// hit (null iterate) when no entry is within max_distance. Counts toward
  /// hit/miss statistics and refreshes the winning entry's LRU stamp.
  [[nodiscard]] CacheHit lookup(std::uint64_t key, std::span<const double> pd,
                                std::span<const double> qd);

  /// Inserts a solved instance's iterate. An entry under the same key whose
  /// loads are identical is replaced in place; otherwise the LRU entry is
  /// evicted once capacity is reached.
  void insert(std::uint64_t key, std::vector<double> pd, std::vector<double> qd,
              std::shared_ptr<const admm::WarmStartIterate> iterate);

  [[nodiscard]] int size() const;
  [[nodiscard]] std::uint64_t hits() const;
  [[nodiscard]] std::uint64_t misses() const;
  [[nodiscard]] const CacheOptions& options() const { return options_; }

  /// L-infinity distance between two load pairs (max over pd and qd).
  static double load_distance(std::span<const double> pd_a, std::span<const double> qd_a,
                              std::span<const double> pd_b, std::span<const double> qd_b);

 private:
  struct Entry {
    std::vector<double> pd, qd;
    std::shared_ptr<const admm::WarmStartIterate> iterate;
    std::uint64_t last_used = 0;  ///< logical LRU stamp
  };

  void evict_lru_locked();

  CacheOptions options_;
  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, std::vector<Entry>> entries_;
  int size_ = 0;
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace gridadmm::serve
