// Request/response types of the solve service.
//
// A SolveRequest is one ACOPF instance phrased the way a serving client
// thinks: "this case, these loads, maybe this outage, this accuracy". The
// service coalesces concurrently-pending requests into fused micro-batches
// (scenario/BatchAdmmSolver) and fulfills each request's future with a
// SolveResult carrying the solution, solver stats, and serving metadata.
#pragma once

#include <memory>
#include <vector>

#include "admm/solver.hpp"
#include "grid/network.hpp"
#include "grid/solution.hpp"
#include "obs/convergence.hpp"
#include "scenario/scenario.hpp"
#include "serve/timeline.hpp"

namespace gridadmm::serve {

struct SolveRequest {
  /// Case to solve. Null = the service's base network. Requests against
  /// different networks are batched separately (grouped by structural
  /// fingerprint), so one service can front several cases.
  std::shared_ptr<const grid::Network> network;

  /// Per-bus loads in per-unit (full vectors). Empty = the case's own loads.
  std::vector<double> pd, qd;

  /// N-1 contingency: index of the dropped branch (-1 = full topology).
  int outage_branch = -1;

  /// Heterogeneous per-request termination overrides (default: inherit the
  /// service's AdmmParams).
  scenario::ScenarioControls controls;

  /// Opt out of the warm-start cache for this request (no lookup, no
  /// insertion) — e.g. for a calibration solve that must be cold.
  bool bypass_cache = false;

  /// Absolute deadline in seconds on the service's injected clock
  /// (Clock::now() timebase); <= 0 = no deadline. Enforced twice: at
  /// admission (an already-expired request is rejected synchronously) and
  /// at dispatch pickup (a request that expired while queued is shed with
  /// DeadlineError before burning solver time). A real-time tracking client
  /// has no use for a solution that arrives after its control interval.
  double deadline = 0.0;
};

/// Which rung of the engine escalation ladder produced a result's final
/// solution (DESIGN.md §13). The ladder is ordered: every request starts on
/// the fused batch ADMM; a stall-flagged non-converged slot gets one
/// boosted-budget solo ADMM retry; anything still non-converged is handed
/// to the warm-started MiniIPM fallback when the router is enabled.
enum class SolveEngine {
  kAdmm = 0,           ///< fused batch ADMM (first rung)
  kEscalatedAdmm = 1,  ///< boosted-budget solo ADMM retry (second rung)
  kIpm = 2,            ///< warm-started MiniIPM fallback (last rung)
};

/// Stable engine label ("admm", "escalated_admm", "ipm") for metric names,
/// bench fields, and logs.
inline const char* engine_name(SolveEngine engine) {
  switch (engine) {
    case SolveEngine::kAdmm: return "admm";
    case SolveEngine::kEscalatedAdmm: return "escalated_admm";
    case SolveEngine::kIpm: return "ipm";
  }
  return "unknown";
}

struct SolveResult {
  grid::OpfSolution solution;
  admm::AdmmStats stats;      ///< full per-request solver stats
  bool converged = false;
  double objective = 0.0;     ///< generation cost ($/h)
  double max_violation = 0.0; ///< ||c(x)||_inf against the request's network

  // ---- Serving metadata ----
  std::uint64_t batch_id = 0;   ///< which micro-batch served this request
  int batch_occupancy = 0;      ///< how many requests shared that batch
  bool cache_hit = false;       ///< seeded from a cached nearby iterate
  double cache_distance = 0.0;  ///< load distance to the seed (when cache_hit)
  /// Fused-solve attempts the micro-batch group containing this request
  /// took (1 = clean first try; more after transient retries / poison
  /// bisection — see DESIGN.md §12).
  int solve_attempts = 1;
  /// True when any escalation rung re-solved this request after its fused
  /// batch attempt came back non-converged — the boosted solo ADMM retry
  /// (ServiceOptions::escalation_retry) or the MiniIPM fallback
  /// (ServiceOptions::engine_fallback). Equivalent to engine != kAdmm.
  bool escalated = false;
  /// Which escalation-ladder rung produced `solution` (kAdmm when the
  /// fused batch attempt was the final answer).
  SolveEngine engine = SolveEngine::kAdmm;
  double wait_seconds = 0.0;    ///< submit -> dispatch (injected clock)
  double total_seconds = 0.0;   ///< submit -> future fulfilled (injected clock)
  /// Per-request stage timeline on the trace clock (admit -> queue ->
  /// dispatch -> form -> stage -> solve -> extract -> fulfill), stamped
  /// when ServiceOptions::slo or tracing is on (all-zero otherwise). The
  /// same stamps feed the trace spans, so timeline and trace never drift.
  RequestTimeline timeline;
  /// Sampled convergence trajectory of this request's batch slot, filled
  /// when ServiceOptions::convergence_sample_interval > 0 (empty samples
  /// otherwise). Feed obs::should_escalate to decide whether this request
  /// should be retried on a more robust engine.
  obs::ConvergenceTrajectory trajectory;
};

}  // namespace gridadmm::serve
