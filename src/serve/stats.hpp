// Service telemetry: one coherent snapshot of queue, batching, cache, and
// latency behavior. SolveService fills a live copy under its mutex and
// returns value snapshots, so readers never race the dispatcher.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "device/device.hpp"

namespace gridadmm::serve {

/// Per-device attribution when the service routes micro-batches across a
/// DevicePool: how many batches/requests each shard served, what it is
/// solving right now, and the kernel launches its device issued.
struct ShardServiceStats {
  std::uint64_t batches = 0;   ///< micro-batches this shard solved
  std::uint64_t requests = 0;  ///< requests across those batches
  int in_flight = 0;           ///< requests inside this shard's current solve
  device::LaunchStats launch_stats;  ///< launches on this shard's device

  // ---- Circuit-breaker health (DESIGN.md §12) ----
  int state = 0;                     ///< 0 healthy, 1 quarantined, 2 half-open
  int consecutive_failures = 0;      ///< transient attempt failures since last success
  std::uint64_t quarantines = 0;     ///< times this shard was tripped into quarantine
};

struct ServiceStats {
  // ---- Admission ----
  std::uint64_t submitted = 0;  ///< accepted into the queue
  std::uint64_t shed = 0;       ///< capacity sheds (queue full, CapacityError)
  /// Sheds because the service was draining/shutting down (also
  /// CapacityError). Split from `shed` so the SLO shed-rate burn judges
  /// only genuine capacity pressure, not intentional teardown.
  std::uint64_t drain_shed = 0;
  /// Requests shed with DeadlineError: expired on arrival or at dispatch
  /// pickup, before burning solver time. Not a capacity signal.
  std::uint64_t deadline_shed = 0;
  std::uint64_t completed = 0;  ///< futures fulfilled with a result
  std::uint64_t failed = 0;     ///< futures fulfilled with an exception
  int queue_depth = 0;          ///< undispatched requests at snapshot time
  int dispatch_backlog = 0;     ///< requests in popped batches awaiting an idle device
  int in_flight = 0;            ///< requests inside batch solves (all shards)

  // ---- Fault tolerance (DESIGN.md §12) ----
  /// Fused-solve re-attempts beyond each micro-batch group's first try:
  /// transient-error retries, poison-bisection halves, half-open probes.
  std::uint64_t retries = 0;
  /// Permanent-failure splits performed to isolate poison requests.
  std::uint64_t bisections = 0;
  /// Degraded-mode solo retries of should_escalate-flagged non-converged
  /// requests, and how many of those converged on the boosted budget.
  std::uint64_t escalation_retries = 0;
  std::uint64_t escalation_recovered = 0;
  /// Shard circuit-breaker state changes (healthy -> quarantined ->
  /// half-open -> ...), summed over all shards.
  std::uint64_t quarantine_transitions = 0;

  // ---- Engine router (DESIGN.md §13) ----
  /// Engine split of `completed`: which escalation-ladder rung produced
  /// each fulfilled result. Invariant: completed == completed_admm +
  /// completed_escalated_admm + completed_ipm, always — a rescue that
  /// misses its deadline or fails is a shed/failure, never a completion.
  std::uint64_t completed_admm = 0;
  std::uint64_t completed_escalated_admm = 0;
  std::uint64_t completed_ipm = 0;  ///< IPM rescues (a.k.a. ipm_rescues)
  /// MiniIPM fallback re-solves started, and how many ended in a typed
  /// ConvergenceError/NumericalError on the future (counted in `failed`).
  std::uint64_t ipm_attempts = 0;
  std::uint64_t ipm_failures = 0;

  // ---- Batching ----
  std::uint64_t batches = 0;  ///< dispatched micro-batches
  /// batch_occupancy[k] counts batches that coalesced k+1 requests; the
  /// vector is sized max_batch_size, so full batches land in the last slot.
  std::vector<std::uint64_t> batch_occupancy;

  // ---- Warm-start cache ----
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_entries = 0;  ///< entries resident at snapshot time

  // ---- Device attribution (the service owns its DevicePool) ----
  device::LaunchStats launch_stats;  ///< launches across all batch solves (all shards)
  /// One entry per pool device; batches/requests/launches sum to the
  /// aggregate figures above.
  std::vector<ShardServiceStats> per_shard;

  // ---- Latency (injected-clock seconds, submit -> future fulfilled) ----
  std::uint64_t latency_samples = 0;
  double p50_latency = 0.0;
  double p95_latency = 0.0;
  double p99_latency = 0.0;  ///< tail percentile the serving SLOs are stated in

  [[nodiscard]] double cache_hit_rate() const {
    const std::uint64_t total = cache_hits + cache_misses;
    return total == 0 ? 0.0 : static_cast<double>(cache_hits) / static_cast<double>(total);
  }

  [[nodiscard]] double mean_batch_occupancy() const {
    std::uint64_t batches_seen = 0, requests = 0;
    for (std::size_t k = 0; k < batch_occupancy.size(); ++k) {
      batches_seen += batch_occupancy[k];
      requests += batch_occupancy[k] * (k + 1);
    }
    return batches_seen == 0 ? 0.0
                             : static_cast<double>(requests) / static_cast<double>(batches_seen);
  }
};

/// The q-quantile (0 <= q <= 1) of a sample vector, nearest-rank method.
/// Takes a copy because nth_element reorders; empty input returns 0.
inline double latency_quantile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(samples.size() - 1) + 0.5);
  const auto nth = samples.begin() + static_cast<std::ptrdiff_t>(rank);
  std::nth_element(samples.begin(), nth, samples.end());
  return *nth;
}

}  // namespace gridadmm::serve
