// Injectable clock for service telemetry.
//
// The dispatcher's *scheduling* (batching-window timeouts, condition-variable
// waits) always runs on std::chrono::steady_clock — a fake clock there would
// stall real threads. The injected clock feeds *telemetry only*: request
// latencies and ServiceStats percentiles, so tests can assert exact latency
// accounting without sleeping.
#pragma once

#include <chrono>
#include <mutex>

namespace gridadmm::serve {

/// Monotonic seconds source. Implementations must be thread-safe: now() is
/// called from submitter threads and the dispatcher concurrently.
class Clock {
 public:
  virtual ~Clock() = default;
  [[nodiscard]] virtual double now() const = 0;
};

/// Wall clock backed by std::chrono::steady_clock (the default).
class SteadyClock final : public Clock {
 public:
  [[nodiscard]] double now() const override {
    const auto t = std::chrono::steady_clock::now().time_since_epoch();
    return std::chrono::duration<double>(t).count();
  }
};

/// Hand-advanced clock for tests: time moves only when advance() is called.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(double start = 0.0) : now_(start) {}

  [[nodiscard]] double now() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return now_;
  }

  void advance(double seconds) {
    std::lock_guard<std::mutex> lock(mu_);
    now_ += seconds;
  }

 private:
  mutable std::mutex mu_;
  double now_;
};

}  // namespace gridadmm::serve
