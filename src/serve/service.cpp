#include "serve/service.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <exception>
#include <string>
#include <utility>

#include <fstream>

#include <thread>

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/numeric.hpp"
#include "common/rng.hpp"
#include "grid/solution.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "admm/warm_start.hpp"
#include "scenario/batch_solver.hpp"
#include "scenario/ipm_engine.hpp"
#include "scenario/scenario_set.hpp"

namespace gridadmm::serve {

namespace {

/// Structural cache/batch key: the case fingerprint with the outage branch
/// mixed in, so "case9 minus branch 3" never shares a batch slot shape or a
/// warm-start neighborhood with intact case9.
std::uint64_t request_key(std::uint64_t fingerprint, int outage_branch) {
  return fingerprint ^ (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(outage_branch + 2));
}

constexpr auto validate = require_valid;

}  // namespace

SolveService::SolveService(grid::Network base, admm::AdmmParams params, ServiceOptions options)
    : base_(std::move(base)),
      params_(params),
      options_(std::move(options)),
      cache_(options_.cache) {
  require(base_.finalized(), "SolveService: base network must be finalized");
  require(options_.max_batch_size > 0, "SolveService: max_batch_size must be positive");
  require(options_.max_queue_depth > 0, "SolveService: max_queue_depth must be positive");
  require(options_.num_devices > 0, "SolveService: num_devices must be positive");
  require(std::isfinite(options_.batching_window_seconds) &&
              options_.batching_window_seconds >= 0.0,
          "SolveService: batching_window_seconds must be finite and non-negative");
  require(options_.latency_sample_capacity > 0,
          "SolveService: latency_sample_capacity must be positive");
  require(options_.watchdog_stall_seconds > 0.0,
          "SolveService: watchdog_stall_seconds must be positive");
  require(options_.expo_port >= -1 && options_.expo_port <= 65535,
          "SolveService: expo_port must be in [-1, 65535]");
  require(options_.max_retries >= 0, "SolveService: max_retries must be non-negative");
  require(std::isfinite(options_.retry_backoff_seconds) && options_.retry_backoff_seconds >= 0.0,
          "SolveService: retry_backoff_seconds must be finite and non-negative");
  require(std::isfinite(options_.retry_backoff_max_seconds) &&
              options_.retry_backoff_max_seconds >= 0.0,
          "SolveService: retry_backoff_max_seconds must be finite and non-negative");
  require(options_.quarantine_threshold > 0,
          "SolveService: quarantine_threshold must be positive");
  require(std::isfinite(options_.quarantine_backoff_seconds) &&
              options_.quarantine_backoff_seconds >= 0.0,
          "SolveService: quarantine_backoff_seconds must be finite and non-negative");
  require(std::isfinite(options_.escalation_budget_boost) &&
              options_.escalation_budget_boost >= 1.0,
          "SolveService: escalation_budget_boost must be >= 1");
  require(std::isfinite(options_.ipm_budget_seconds) && options_.ipm_budget_seconds >= 0.0,
          "SolveService: ipm_budget_seconds must be finite and non-negative");
  require(std::isfinite(options_.ipm_tolerance) && options_.ipm_tolerance > 0.0,
          "SolveService: ipm_tolerance must be positive and finite");
  require(options_.ipm_max_iterations > 0,
          "SolveService: ipm_max_iterations must be positive");
  // Aliasing shared_ptr: requests that carry no network reference the
  // service's own copy without another Network allocation.
  base_shared_ = std::shared_ptr<const grid::Network>(std::shared_ptr<void>(), &base_);
  base_fingerprint_ = grid::network_fingerprint(base_);
  base_bridges_ = grid::bridge_branches(base_);
  clock_ = options_.clock != nullptr ? options_.clock : std::make_shared<SteadyClock>();
  if (options_.trace) obs::Tracer::instance().enable();
  m_submitted_ = &metrics_.counter("serve_requests_submitted_total",
                                   "Requests accepted into the queue");
  m_shed_ = &metrics_.counter("serve_requests_shed_total",
                              "Requests rejected by admission control");
  m_completed_ = &metrics_.counter("serve_requests_completed_total",
                                   "Futures fulfilled with a result");
  m_failed_ = &metrics_.counter("serve_requests_failed_total",
                                "Futures fulfilled with an exception");
  m_batches_ = &metrics_.counter("serve_batches_total", "Dispatched micro-batches");
  m_latency_ = &metrics_.histogram("serve_latency_seconds",
                                   "Submit-to-fulfilled latency (injected clock)");
  m_occupancy_ = &metrics_.histogram("serve_batch_occupancy",
                                     "Requests coalesced per micro-batch", 1.0, 2.0, 10);
  m_queue_depth_ = &metrics_.gauge("serve_queue_depth",
                                   "Undispatched requests (refreshed by stats())");
  m_in_flight_ = &metrics_.gauge("serve_in_flight",
                                 "Requests inside batch solves (refreshed by stats())");
  // Fault-tolerance instruments (DESIGN.md §12).
  m_drain_shed_ = &metrics_.counter("serve_requests_drain_shed_total",
                                    "Requests rejected because the service was draining");
  m_deadline_shed_ = &metrics_.counter("serve_deadline_shed_total",
                                       "Requests shed because their deadline expired");
  m_retries_ = &metrics_.counter(
      "serve_retries_total",
      "Fused-solve re-attempts (transient retries, poison-bisection halves)");
  m_quarantine_ = &metrics_.counter("serve_quarantine_transitions_total",
                                    "Shard circuit-breaker state changes");
  m_escalations_ = &metrics_.counter(
      "serve_escalation_retries_total",
      "Degraded-mode solo retries of should_escalate-flagged requests");
  m_failed_form_ = &metrics_.counter("serve_failures_by_stage_form_total",
                                     "Request failures during batch formation");
  m_failed_solve_ = &metrics_.counter("serve_failures_by_stage_solve_total",
                                      "Request failures during or after the fused solve");
  // Engine-router attribution (DESIGN.md §13): completions split by the
  // escalation-ladder rung that produced them, plus per-engine latency.
  for (int e = 0; e < 3; ++e) {
    const char* name = engine_name(static_cast<SolveEngine>(e));
    m_engine_completed_[e] =
        &metrics_.counter(std::string("serve_engine_") + name + "_completed_total",
                          "Completions whose final solution this engine produced");
    m_engine_latency_[e] =
        &metrics_.histogram(std::string("serve_latency_") + name + "_seconds",
                            "Submit-to-fulfilled latency by final engine");
  }
  m_ipm_failures_ = &metrics_.counter(
      "serve_engine_ipm_failures_total",
      "MiniIPM fallback re-solves that ended in a typed error on the future");
  pool_ = std::make_unique<device::DevicePool>(options_.num_devices, options_.device_workers);
  live_.batch_occupancy.assign(static_cast<std::size_t>(options_.max_batch_size), 0);
  live_.per_shard.assign(static_cast<std::size_t>(options_.num_devices), ShardServiceStats{});
  shard_health_.assign(static_cast<std::size_t>(options_.num_devices), ShardHealth{});
  m_shard_state_.reserve(static_cast<std::size_t>(options_.num_devices));
  for (int d = 0; d < options_.num_devices; ++d) {
    m_shard_state_.push_back(
        &metrics_.gauge("serve_shard_state_" + std::to_string(d),
                        "Shard circuit-breaker state (0 healthy, 1 quarantined, 2 half-open)"));
  }

  // ---- SLO observability layer (monitor, per-stage histograms) ----
  if (options_.slo) {
    slo_ = std::make_unique<obs::SloMonitor>(options_.slo_objectives, options_.slo_window);
    slo_->bind_gauges(metrics_);
    for (int st = 0; st < RequestTimeline::kStageCount; ++st) {
      m_stage_[st] = &metrics_.histogram(
          std::string("serve_stage_") + RequestTimeline::stage_name(st) + "_seconds",
          "Per-request stage latency (trace clock)", 1e-6, 2.0, 26);
    }
  }
  // Every watchdog slot registers before any thread starts: workers index
  // slots_ lock-free, so the vector must not grow once they run.
  wd_dispatcher_ = watchdog_.register_slot("dispatcher");
  wd_shards_.reserve(static_cast<std::size_t>(options_.num_devices));
  for (int d = 0; d < options_.num_devices; ++d) {
    wd_shards_.push_back(watchdog_.register_slot("shard-" + std::to_string(d)));
  }
  wd_maintenance_ = watchdog_.register_slot("maintenance");
  if (!obs::MetricsDump::instance().env_path().empty()) {
    obs::MetricsDump::instance().attach("serve", &metrics_);
    attached_dump_ = true;
  }
  // The endpoint binds before the worker threads start, so a bind failure
  // throws out of a service with no threads to unwind.
  if (options_.expo_port >= 0) {
    obs::ExpoOptions expo_options;
    expo_options.host = options_.expo_host;
    expo_options.port = options_.expo_port;
    expo_ = std::make_unique<obs::ExpoServer>(expo_options);
    expo_->handle("/metrics", [this] {
      stats();  // refresh gauges so the exposition agrees with ServiceStats
      return obs::ExpoResponse{200, "text/plain; version=0.0.4; charset=utf-8",
                               metrics_.expose_prometheus()};
    });
    expo_->handle("/healthz", [this] {
      const std::uint64_t now = obs::now_ns();
      const bool ok = watchdog_.healthy(now, options_.watchdog_stall_seconds);
      std::string body = watchdog_.healthz_json(now, options_.watchdog_stall_seconds);
      // Splice the shard circuit-breaker states into the watchdog JSON, so
      // one probe shows thread liveness and quarantine together. A
      // quarantined shard does not 503: the service is degraded, still
      // serving through healthy shards.
      if (!body.empty() && body.back() == '}') {
        body.pop_back();
        body += ", \"shards\": [";
        const std::lock_guard<std::mutex> lock(mu_);
        for (std::size_t d = 0; d < shard_health_.size(); ++d) {
          const ShardHealth& health = shard_health_[d];
          if (d > 0) body += ", ";
          body += "{\"shard\": " + std::to_string(d) + ", \"state\": \"";
          body += health.state == ShardState::kHealthy       ? "healthy"
                  : health.state == ShardState::kQuarantined ? "quarantined"
                                                             : "half-open";
          body += "\", \"quarantines\": " + std::to_string(live_.per_shard[d].quarantines);
          body += ", \"consecutive_failures\": " + std::to_string(health.consecutive_failures);
          body += "}";
        }
        body += "]}";
      }
      return obs::ExpoResponse{ok ? 200 : 503, "application/json", body + "\n"};
    });
    expo_->handle("/slo", [this] {
      if (slo_ == nullptr) {
        return obs::ExpoResponse{404, "text/plain; charset=utf-8",
                                 "slo monitor disabled (ServiceOptions::slo)\n"};
      }
      const obs::SloVerdict verdict = slo_->evaluate(clock_->now());
      return obs::ExpoResponse{200, "application/json",
                               verdict.to_json(slo_->objectives()) + "\n"};
    });
    expo_->start();
  }

  shard_workers_.reserve(static_cast<std::size_t>(options_.num_devices));
  for (int d = 0; d < options_.num_devices; ++d) {
    shard_workers_.emplace_back([this, d] { shard_worker_main(d); });
  }
  dispatcher_ = std::thread([this] { dispatcher_main(); });
  if ((slo_ != nullptr && options_.slo_eval_interval_seconds > 0.0) ||
      (!options_.metrics_snapshot_path.empty() &&
       options_.metrics_snapshot_interval_seconds > 0.0)) {
    maintenance_ = std::thread([this] { maintenance_main(); });
  }
}

SolveService::~SolveService() {
  // Endpoint first: no scrape may run against a service mid-teardown.
  expo_.reset();
  {
    std::lock_guard<std::mutex> lock(maintenance_mu_);
    maintenance_stop_ = true;
  }
  cv_maintenance_.notify_all();
  if (maintenance_.joinable()) maintenance_.join();
  drain();
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_work_.notify_all();
  cv_shard_.notify_all();
  dispatcher_.join();
  for (auto& worker : shard_workers_) worker.join();
  if (!options_.metrics_snapshot_path.empty()) {
    stats();  // final gauge refresh before the last snapshot line
    append_metrics_snapshot();
  }
  if (attached_dump_) obs::MetricsDump::instance().detach(&metrics_);
}

void SolveService::maintenance_main() {
  obs::set_thread_name("serve.maintenance");
  using clock = std::chrono::steady_clock;
  auto as_duration = [](double seconds) {
    return std::chrono::duration_cast<clock::duration>(std::chrono::duration<double>(seconds));
  };
  const bool do_eval = slo_ != nullptr && options_.slo_eval_interval_seconds > 0.0;
  const bool do_snapshot = !options_.metrics_snapshot_path.empty() &&
                           options_.metrics_snapshot_interval_seconds > 0.0;
  auto next_eval = clock::now() + as_duration(options_.slo_eval_interval_seconds);
  auto next_snapshot = clock::now() + as_duration(options_.metrics_snapshot_interval_seconds);
  std::unique_lock<std::mutex> lock(maintenance_mu_);
  while (!maintenance_stop_) {
    auto next = clock::time_point::max();
    if (do_eval) next = std::min(next, next_eval);
    if (do_snapshot) next = std::min(next, next_snapshot);
    cv_maintenance_.wait_until(lock, next, [&] { return maintenance_stop_; });
    if (maintenance_stop_) return;
    const auto now = clock::now();
    watchdog_.set_idle(wd_maintenance_, false);
    if (do_eval && now >= next_eval) {
      slo_->evaluate(clock_->now());
      next_eval = now + as_duration(options_.slo_eval_interval_seconds);
    }
    if (do_snapshot && now >= next_snapshot) {
      stats();  // refresh gauges so each snapshot line is coherent
      append_metrics_snapshot();
      next_snapshot = now + as_duration(options_.metrics_snapshot_interval_seconds);
    }
    watchdog_.set_idle(wd_maintenance_, true);
  }
}

void SolveService::append_metrics_snapshot() {
  std::ofstream file(options_.metrics_snapshot_path, std::ios::app);
  if (!file) {
    log::warn("SolveService: cannot append metrics snapshot to '",
              options_.metrics_snapshot_path, "'");
    return;
  }
  file << metrics_.snapshot_json() << "\n";
}

std::uint64_t SolveService::fingerprint_of(const std::shared_ptr<const grid::Network>& network) {
  if (network.get() == &base_) return base_fingerprint_;
  std::lock_guard<std::mutex> lock(memo_mu_);
  auto memo = fingerprint_memo_.find(network.get());
  if (memo == fingerprint_memo_.end()) {
    constexpr std::size_t kMemoBound = 64;
    if (fingerprint_memo_.size() >= kMemoBound) fingerprint_memo_.clear();
    memo = fingerprint_memo_
               .emplace(network.get(),
                        std::make_pair(network, grid::network_fingerprint(*network)))
               .first;
  }
  return memo->second.second;
}

std::future<SolveResult> SolveService::submit(SolveRequest request) {
  if (request.network == nullptr) request.network = base_shared_;
  const grid::Network& net = *request.network;
  validate(net.finalized(), "SolveService::submit: network must be finalized");
  const auto nb = static_cast<std::size_t>(net.num_buses());
  // Resolve default loads against the request's own case, up front, so a
  // batch never substitutes another network's base loads.
  if (request.pd.empty()) {
    request.pd.reserve(nb);
    for (const auto& bus : net.buses) request.pd.push_back(bus.pd);
  }
  if (request.qd.empty()) {
    request.qd.reserve(nb);
    for (const auto& bus : net.buses) request.qd.push_back(bus.qd);
  }
  validate(request.pd.size() == nb && request.qd.size() == nb,
           "SolveService::submit: load vector size mismatch");
  validate(all_finite(request.pd) && all_finite(request.qd),
           "SolveService::submit: loads must be finite (no NaN/inf entries)");
  validate(request.outage_branch >= -1 && request.outage_branch < net.num_branches(),
           "SolveService::submit: outage branch index out of range");
  validate(std::isfinite(request.deadline),
           "SolveService::submit: deadline must be finite (injected-clock seconds)");
  if (request.outage_branch >= 0) {
    // Base-case requests hit the precomputed bitmap; foreign networks pay
    // one DFS per contingency submit (the rare path).
    const bool bridge = request.network.get() == &base_
                            ? base_bridges_[static_cast<std::size_t>(request.outage_branch)]
                            : grid::is_bridge(net, request.outage_branch);
    validate(!bridge,
             "SolveService::submit: outage branch is a bridge (would disconnect the network)");
  }

  Pending pending;
  pending.fingerprint = request_key(fingerprint_of(request.network), request.outage_branch);
  pending.request = std::move(request);
  pending.submit_time = clock_->now();
  pending.arrival = std::chrono::steady_clock::now();
  pending.timeline.admit_ns = obs::now_ns();
  auto future = pending.promise.get_future();

  std::uint64_t request_id = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_ || shutdown_) {
      // Drain-time sheds are intentional teardown, not capacity pressure:
      // counted apart so the SLO shed burn never pages on a clean drain.
      ++live_.drain_shed;
      m_drain_shed_->inc();
      throw CapacityError("SolveService::submit: service is draining, request shed");
    }
    // Deadline enforcement, first rung: a request already expired on
    // arrival is rejected before it can burn a queue slot.
    if (pending.request.deadline > 0.0 && pending.submit_time >= pending.request.deadline) {
      ++live_.deadline_shed;
      m_deadline_shed_->inc();
      if (slo_ != nullptr) slo_->record_deadline_shed(pending.submit_time);
      throw DeadlineError("SolveService::submit: deadline already expired at admission");
    }
    // Admission bounds everything accepted and unfulfilled — main queue,
    // shard queues, and in-flight batches — so routing batches across the
    // pool cannot launder backpressure away.
    if (pending_total_ >= options_.max_queue_depth) {
      ++live_.shed;
      m_shed_->inc();
      if (slo_ != nullptr) slo_->record_shed(pending.submit_time);
      throw CapacityError("SolveService::submit: queue full (max_queue_depth reached), "
                          "request shed");
    }
    request_id = next_request_id_++;
    pending.id = request_id;
    queue_.push_back(std::move(pending));
    ++pending_total_;
    ++live_.submitted;
    m_submitted_->inc();
  }
  obs::instant("serve.admit", "req", request_id);
  cv_work_.notify_all();
  return future;
}

void SolveService::dispatcher_main() {
  obs::set_thread_name("serve.dispatcher");
  const auto window = std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(options_.batching_window_seconds));
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    watchdog_.set_idle(wd_dispatcher_, true);
    cv_work_.wait(lock, [&] { return shutdown_ || !queue_.empty(); });
    watchdog_.set_idle(wd_dispatcher_, false);
    if (queue_.empty()) {
      if (shutdown_) return;
      continue;
    }
    // Dynamic micro-batching: hold the batch open (up to the window,
    // measured from the oldest pending arrival) while it fills; flush
    // immediately once full, on drain, or on shutdown. The fill test uses
    // the whole queue depth — a cheap proxy that only ever flushes early
    // when fingerprints are mixed, and early means smaller batches, never
    // starvation.
    const auto deadline = queue_.front().arrival + window;
    watchdog_.set_idle(wd_dispatcher_, true);
    while (!shutdown_ && !draining_ &&
           static_cast<int>(queue_.size()) < options_.max_batch_size &&
           std::chrono::steady_clock::now() < deadline) {
      cv_work_.wait_until(lock, deadline);
    }
    // Don't freeze a batch while every device is busy: keep it in the
    // request queue, where late arrivals still coalesce into it, and pop
    // only once a worker can actually take it. Without this gate a long
    // solve would fragment the backlog into one window-sized sliver per
    // wakeup, eroding occupancy. Quarantined shards don't count as
    // capacity until their reopen instant; when every shard is sidelined,
    // the timed wait re-gates at the earliest reopen so half-open probes
    // still drain the queue.
    while (true) {
      if (shutdown_) break;
      const auto now = std::chrono::steady_clock::now();
      if (static_cast<int>(dispatched_.size()) + busy_workers_ < available_workers_locked(now)) {
        break;
      }
      auto wake = std::chrono::steady_clock::time_point::max();
      for (const ShardHealth& health : shard_health_) {
        if (health.state == ShardState::kQuarantined && health.reopen > now) {
          wake = std::min(wake, health.reopen);
        }
      }
      if (wake == std::chrono::steady_clock::time_point::max()) {
        cv_work_.wait(lock);
      } else {
        cv_work_.wait_until(lock, wake);
      }
    }
    watchdog_.set_idle(wd_dispatcher_, false);
    if (queue_.empty()) continue;  // a shutdown wake-up with nothing left
    // Hand the popped batch to the shared dispatch queue and keep going:
    // the dispatcher never blocks on a solve, the next idle device takes
    // the oldest batch (work-conserving — no batch waits behind a busy
    // device while another sits idle), and up to num_devices
    // micro-batches are in flight concurrently.
    Batch batch;
    batch.requests = pop_batch_locked();
    batch.id = next_batch_id_++;
    if (options_.slo || obs::Tracer::enabled()) {
      // One stamp serves both views: the timeline's queue_ns and the
      // serve.queue span end are the same instant by construction.
      const std::uint64_t popped_ns = obs::now_ns();
      for (Pending& p : batch.requests) {
        p.timeline.queue_ns = popped_ns;
        obs::span_between("serve.queue", p.timeline.admit_ns, popped_ns, "req", p.id, "batch",
                          batch.id);
      }
    }
    dispatched_.push_back(std::move(batch));
    // notify_all, not notify_one: a single wake could land on a shard
    // sitting out its quarantine backoff while a healthy one sleeps.
    cv_shard_.notify_all();
  }
}

int SolveService::available_workers_locked(std::chrono::steady_clock::time_point now) const {
  int n = 0;
  for (const ShardHealth& health : shard_health_) {
    if (health.state != ShardState::kQuarantined || now >= health.reopen) ++n;
  }
  return n;
}

void SolveService::transition_shard_locked(int shard, ShardState to) {
  const auto d = static_cast<std::size_t>(shard);
  ShardHealth& health = shard_health_[d];
  if (health.state == to) return;
  health.state = to;
  if (to == ShardState::kQuarantined) {
    health.reopen = std::chrono::steady_clock::now() +
                    std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(options_.quarantine_backoff_seconds));
    ++live_.per_shard[d].quarantines;
    log::warn("SolveService: shard ", shard, " quarantined after ",
              health.consecutive_failures, " consecutive transient failures");
  } else if (to == ShardState::kHealthy) {
    health.consecutive_failures = 0;
    log::info("SolveService: shard ", shard, " recovered (half-open probe succeeded)");
  }
  ++live_.quarantine_transitions;
  m_quarantine_->inc();
  m_shard_state_[d]->set(static_cast<double>(static_cast<int>(to)));
  obs::instant("serve.quarantine", "shard", static_cast<std::uint64_t>(shard), "state",
               static_cast<std::uint64_t>(static_cast<int>(to)));
  // State changes alter dispatch capacity: wake the dispatcher and peers.
  cv_work_.notify_all();
  cv_shard_.notify_all();
}

void SolveService::shard_worker_main(int shard) {
  obs::set_thread_name("serve.shard");
  const auto d = static_cast<std::size_t>(shard);
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    watchdog_.set_idle(wd_shards_[d], true);
    // Health-aware pickup: healthy and half-open shards take work freely; a
    // quarantined shard sits out until its reopen instant — the shared
    // dispatch queue keeps flowing to healthy shards meanwhile, which IS
    // the redistribution — then takes exactly one probe batch half-open.
    while (true) {
      if (shutdown_) break;
      if (!dispatched_.empty()) {
        ShardHealth& health = shard_health_[d];
        if (health.state != ShardState::kQuarantined) break;
        const auto now = std::chrono::steady_clock::now();
        if (now >= health.reopen) {
          transition_shard_locked(shard, ShardState::kHalfOpen);
          break;
        }
        cv_shard_.wait_until(lock, health.reopen);
      } else {
        cv_shard_.wait(lock);
      }
    }
    if (dispatched_.empty()) {
      if (shutdown_) return;
      continue;
    }
    watchdog_.set_idle(wd_shards_[d], false);
    Batch batch = std::move(dispatched_.front());
    dispatched_.pop_front();
    const int size = static_cast<int>(batch.requests.size());
    live_.per_shard[d].in_flight = size;
    ++busy_workers_;
    lock.unlock();
    const BatchOutcome outcome = process_batch(std::move(batch), shard);
    lock.lock();
    live_.per_shard[d].in_flight = 0;
    --busy_workers_;
    pending_total_ -= size;
    // ---- Circuit breaker (DESIGN.md §12) ----
    // A batch that exhausted its transient retries implicates the shard's
    // device; any batch resolved without exhaustion proves it healthy.
    ShardHealth& health = shard_health_[d];
    if (outcome.exhausted_transient) {
      health.consecutive_failures += std::max(outcome.transient_attempts, 1);
    } else {
      health.consecutive_failures = 0;
    }
    if (health.state == ShardState::kHalfOpen) {
      transition_shard_locked(shard, outcome.exhausted_transient ? ShardState::kQuarantined
                                                                 : ShardState::kHealthy);
    } else if (health.state == ShardState::kHealthy &&
               health.consecutive_failures >= options_.quarantine_threshold) {
      transition_shard_locked(shard, ShardState::kQuarantined);
    }
    // A worker slot opened up: the dispatcher may now pop the next batch.
    cv_work_.notify_all();
    if (queue_.empty() && pending_total_ == 0) cv_idle_.notify_all();
  }
}

std::vector<SolveService::Pending> SolveService::pop_batch_locked() {
  std::vector<Pending> batch;
  const std::uint64_t key = queue_.front().fingerprint;
  std::deque<Pending> rest;
  while (!queue_.empty()) {
    Pending& front = queue_.front();
    if (front.fingerprint == key && static_cast<int>(batch.size()) < options_.max_batch_size) {
      batch.push_back(std::move(front));
    } else {
      rest.push_back(std::move(front));
    }
    queue_.pop_front();
  }
  queue_.swap(rest);
  return batch;
}

void SolveService::record_latency_locked(double seconds) {
  ++live_.latency_samples;
  const auto capacity = static_cast<std::size_t>(options_.latency_sample_capacity);
  if (latency_samples_.size() < capacity) {
    latency_samples_.push_back(seconds);
  } else {
    latency_samples_[latency_next_] = seconds;
    latency_next_ = (latency_next_ + 1) % capacity;
  }
}

SolveService::BatchOutcome SolveService::process_batch(Batch work, int shard) {
  std::vector<Pending>& batch = work.requests;
  BatchContext ctx;
  ctx.batch_id = work.id;
  ctx.shard = shard;
  ctx.dispatch_time = clock_->now();
  // Timeline stamping is on when the SLO layer or the tracer wants it; the
  // batch-scoped stamps live in ctx and fan out to every request of the
  // batch at fulfillment. Each stamp is taken exactly once and feeds both
  // the RequestTimeline and the trace span it bounds (non-drift invariant).
  ctx.timeline_on = options_.slo || obs::Tracer::enabled();
  const obs::TraceSpan batch_span("serve.batch", "batch", ctx.batch_id, "shard",
                                  static_cast<std::uint64_t>(shard));
  ctx.dispatch_ns = ctx.timeline_on ? obs::now_ns() : 0;
  if (ctx.timeline_on && !batch.empty()) {
    // serve.dispatch: the batch's wait in the dispatch queue for a worker
    // (all requests of a batch share queue_ns, so one span covers it).
    obs::span_between("serve.dispatch", batch.front().timeline.queue_ns, ctx.dispatch_ns,
                      "batch", ctx.batch_id, "size", static_cast<std::uint64_t>(batch.size()));
  }

  // ---- Deadline enforcement, second rung: shed before solving ----
  std::vector<std::size_t> members;
  members.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    Pending& p = batch[i];
    if (p.request.deadline > 0.0 && ctx.dispatch_time >= p.request.deadline) {
      if (ctx.timeline_on) {
        p.timeline.dispatch_ns = ctx.dispatch_ns;
        p.timeline.fulfill_ns = obs::now_ns();
      }
      obs::instant("serve.deadline_shed", "req", p.id, "batch", ctx.batch_id);
      if (slo_ != nullptr) slo_->record_deadline_shed(ctx.dispatch_time);
      ++ctx.deadline_shed;
      p.promise.set_exception(std::make_exception_ptr(
          DeadlineError("SolveService: request deadline expired while queued")));
      continue;
    }
    members.push_back(i);
  }
  ctx.accepted = members.size();

  if (!members.empty()) solve_group(batch, std::move(members), ctx);

  // ---- Commit the batch's telemetry under one lock ----
  const std::lock_guard<std::mutex> lock(mu_);
  auto& shard_stats = live_.per_shard[static_cast<std::size_t>(shard)];
  // Requests that reached the solve stage (formation failures fell out).
  const std::size_t solved_for =
      ctx.accepted >= ctx.failed_form ? ctx.accepted - ctx.failed_form : 0;
  live_.completed += ctx.completed;
  if (ctx.completed > 0) m_completed_->inc(ctx.completed);
  live_.completed_admm += ctx.completed_admm;
  live_.completed_escalated_admm += ctx.completed_escalated_admm;
  live_.completed_ipm += ctx.completed_ipm;
  if (ctx.completed_admm > 0) m_engine_completed_[0]->inc(ctx.completed_admm);
  if (ctx.completed_escalated_admm > 0) m_engine_completed_[1]->inc(ctx.completed_escalated_admm);
  if (ctx.completed_ipm > 0) m_engine_completed_[2]->inc(ctx.completed_ipm);
  live_.ipm_attempts += ctx.ipm_attempts;
  live_.ipm_failures += ctx.ipm_failures;
  if (ctx.ipm_failures > 0) m_ipm_failures_->inc(ctx.ipm_failures);
  const std::size_t failed = ctx.failed_form + ctx.failed_solve;
  live_.failed += failed;
  if (failed > 0) m_failed_->inc(failed);
  if (ctx.failed_form > 0) m_failed_form_->inc(ctx.failed_form);
  if (ctx.failed_solve > 0) m_failed_solve_->inc(ctx.failed_solve);
  live_.deadline_shed += ctx.deadline_shed;
  if (ctx.deadline_shed > 0) m_deadline_shed_->inc(ctx.deadline_shed);
  const std::uint64_t retries =
      ctx.attempts > 0 ? static_cast<std::uint64_t>(ctx.attempts) - 1 : 0;
  live_.retries += retries;
  if (retries > 0) m_retries_->inc(retries);
  live_.bisections += ctx.bisections;
  live_.escalation_retries += ctx.escalations;
  live_.escalation_recovered += ctx.escalations_recovered;
  if (ctx.escalations > 0) m_escalations_->inc(ctx.escalations);
  if (solved_for > 0) {
    ++live_.batches;
    m_batches_->inc();
    m_occupancy_->observe(static_cast<double>(solved_for));
    ++shard_stats.batches;
    shard_stats.requests += solved_for;
    const auto slot = std::min(solved_for, static_cast<std::size_t>(options_.max_batch_size));
    ++live_.batch_occupancy[slot - 1];
  }
  live_.launch_stats += ctx.launches;
  shard_stats.launch_stats += ctx.launches;
  for (const double latency : ctx.latencies) record_latency_locked(latency);

  BatchOutcome outcome;
  outcome.transient_attempts = ctx.transient_attempts;
  outcome.exhausted_transient = ctx.exhausted_transient;
  outcome.solved_any = ctx.solved_any;
  return outcome;
}

void SolveService::solve_group(std::vector<Pending>& batch, std::vector<std::size_t> members,
                               BatchContext& ctx) {
  const bool use_cache = options_.cache.capacity > 0;
  // ---- Formation: stage this group as one ScenarioSet ----
  // Re-done per group so bisected halves form their own sets; submit()
  // validation makes a failure here defense-in-depth, and it fails exactly
  // the offending request, never its neighbors.
  scenario::ScenarioSet set(*batch[members.front()].request.network);
  std::vector<std::size_t> formed;
  formed.reserve(members.size());
  for (const std::size_t i : members) {
    Pending& p = batch[i];
    scenario::Scenario sc;
    sc.name = "serve/batch-" + std::to_string(ctx.batch_id) + "-req-" + std::to_string(i);
    sc.kind = p.request.outage_branch >= 0 ? scenario::ScenarioKind::kContingency
                                           : scenario::ScenarioKind::kBase;
    sc.pd = p.request.pd;
    sc.qd = p.request.qd;
    sc.outage_branch = p.request.outage_branch;
    sc.controls = p.request.controls;
    try {
      set.add(std::move(sc));
    } catch (...) {
      fail_request(p, std::current_exception(), /*reached_solve=*/false, ctx);
      continue;
    }
    // Warm-start seed, resolved once and pinned: retries and bisected
    // re-solves reuse it, so re-attempts stay deterministic even while the
    // cache churns underneath.
    if (!p.seed_resolved) {
      if (use_cache && !p.request.bypass_cache) {
        p.seed = cache_.lookup(p.fingerprint, p.request.pd, p.request.qd);
      }
      p.seed_resolved = true;
    }
    formed.push_back(i);
  }
  if (formed.empty()) return;
  ctx.form_ns = ctx.timeline_on ? obs::now_ns() : 0;
  if (ctx.timeline_on) {
    obs::span_between("serve.form", ctx.dispatch_ns, ctx.form_ns, "batch", ctx.batch_id);
  }

  // ---- Attempt loop: retry transient errors, bisect permanent ones ----
  for (int attempt = 0;; ++attempt) {
    try {
      attempt_members(batch, formed, set, ctx);
      return;
    } catch (const TransientDeviceError&) {
      ++ctx.transient_attempts;
      if (attempt >= options_.max_retries) {
        // Out of retries: the whole group fails with the typed transient
        // error, so callers know a later retry may well succeed.
        ctx.exhausted_transient = true;
        const auto error = std::current_exception();
        for (const std::size_t i : formed) {
          fail_request(batch[i], error, /*reached_solve=*/true, ctx);
        }
        return;
      }
      obs::instant("serve.retry", "batch", ctx.batch_id, "attempt",
                   static_cast<std::uint64_t>(attempt + 1));
      // Exponential backoff with deterministic jitter, so retrying shards
      // don't hammer a browned-out device in lockstep.
      if (options_.retry_backoff_seconds > 0.0) {
        std::uint64_t jitter_state =
            ctx.batch_id * 0x9E3779B97F4A7C15ULL + static_cast<std::uint64_t>(attempt);
        const double jitter =
            0.5 * static_cast<double>(splitmix64(jitter_state) >> 11) * 0x1.0p-53;
        const double sleep_seconds =
            std::min(options_.retry_backoff_seconds * std::pow(2.0, attempt) * (1.0 + jitter),
                     options_.retry_backoff_max_seconds);
        std::this_thread::sleep_for(std::chrono::duration<double>(sleep_seconds));
      }
    } catch (...) {
      if (formed.size() == 1) {
        // Solo and permanent: exactly this request fails.
        fail_request(batch[formed.front()], std::current_exception(),
                     /*reached_solve=*/true, ctx);
        return;
      }
      // Permanent error inside a group: bisect to isolate the poison
      // request, so healthy co-batched requests still succeed.
      ++ctx.bisections;
      obs::instant("serve.bisect", "batch", ctx.batch_id, "size",
                   static_cast<std::uint64_t>(formed.size()));
      const auto half = static_cast<std::ptrdiff_t>(formed.size() / 2);
      std::vector<std::size_t> lo(formed.begin(), formed.begin() + half);
      std::vector<std::size_t> hi(formed.begin() + half, formed.end());
      solve_group(batch, std::move(lo), ctx);
      solve_group(batch, std::move(hi), ctx);
      return;
    }
  }
}

void SolveService::attempt_members(std::vector<Pending>& batch,
                                   const std::vector<std::size_t>& members,
                                   const scenario::ScenarioSet& set, BatchContext& ctx) {
  device::Device& device = pool_->device(ctx.shard);
  const bool use_cache = options_.cache.capacity > 0;
  ++ctx.attempts;
  device::LaunchStats attempt_launches;
  scenario::ScenarioReport report;
  std::vector<grid::OpfSolution> solutions;
  std::vector<char> escalated(members.size(), 0);
  std::vector<char> engine(members.size(), static_cast<char>(SolveEngine::kAdmm));
  std::vector<char> resolved(members.size(), 0);  ///< future set by the ladder
  std::uint64_t stage_ns = 0;
  std::uint64_t solve_ns = 0;
  std::uint64_t extract_ns = 0;
  try {
    scenario::BatchAdmmSolver solver(set, params_, &device);
    stage_ns = ctx.timeline_on ? obs::now_ns() : 0;
    if (ctx.timeline_on) {
      obs::span_between("serve.stage", ctx.form_ns, stage_ns, "batch", ctx.batch_id);
    }
    scenario::BatchSolveOptions solve_options;
    solve_options.layout = options_.layout;
    solve_options.branch_pack = options_.branch_pack;
    solve_options.convergence_sample_interval = options_.convergence_sample_interval;
    solve_options.initial_iterates.assign(members.size(), nullptr);
    for (std::size_t s = 0; s < members.size(); ++s) {
      const Pending& p = batch[members[s]];
      if (p.seed.iterate != nullptr) solve_options.initial_iterates[s] = p.seed.iterate.get();
    }
    {
      device::LaunchStatsScope scope(device, attempt_launches);
      report = solver.solve(solve_options);
    }
    solve_ns = ctx.timeline_on ? obs::now_ns() : 0;
    if (ctx.timeline_on) {
      obs::span_between("serve.solve", stage_ns, solve_ns, "batch", ctx.batch_id, "size",
                        static_cast<std::uint64_t>(members.size()));
    }
    solutions = solver.solutions();
    // ---- Refresh the warm-start cache with converged iterates ----
    for (std::size_t s = 0; s < members.size(); ++s) {
      const Pending& p = batch[members[s]];
      if (!use_cache || p.request.bypass_cache) continue;
      if (!report.records[s].converged) continue;
      cache_.insert(p.fingerprint, p.request.pd, p.request.qd,
                    std::make_shared<admm::WarmStartIterate>(
                        solver.export_iterate(static_cast<int>(s))));
    }
    extract_ns = ctx.timeline_on ? obs::now_ns() : 0;
    if (ctx.timeline_on) {
      obs::span_between("serve.extract", solve_ns, extract_ns, "batch", ctx.batch_id);
    }

    // ---- Engine escalation ladder (DESIGN.md §13) ----
    // Rung 2: a non-converged slot whose sampled trajectory shows no
    // residual progress gets one solo ADMM re-solve, warm-started from its
    // own failed iterate with a multiplied iteration budget. Best-effort:
    // any rescue failure keeps the original result.
    // Rung 3 (engine_fallback): anything still non-converged is handed to
    // the warm-started MiniIPM fallback, seeded from the latest failed
    // iterate. Unlike rung 2 this rung is decisive: success replaces the
    // result (engine = kIpm), a typed failure fails the future — the
    // request is never fulfilled with a silently non-converged answer.
    // Both rungs honor the request deadline at pickup: an expired request
    // is shed as a deadline miss, not rescued late.
    const bool rung2_enabled = options_.escalation_retry &&
                               options_.convergence_sample_interval > 0 &&
                               !report.convergence.empty();
    if (rung2_enabled || options_.engine_fallback) {
      // Sheds one slot whose deadline passed at escalation pickup — the
      // same accounting as the dispatch-pickup shed, with the stage stamps
      // the slot earned inside this batch.
      const auto shed_deadline = [&](std::size_t s) {
        Pending& p = batch[members[s]];
        if (ctx.timeline_on) {
          p.timeline.dispatch_ns = ctx.dispatch_ns;
          p.timeline.form_ns = ctx.form_ns;
          p.timeline.stage_ns = stage_ns;
          p.timeline.solve_ns = solve_ns;
          p.timeline.extract_ns = extract_ns;
          p.timeline.fulfill_ns = obs::now_ns();
        }
        if (slo_ != nullptr) {
          for (int st = 0; st < RequestTimeline::kStageCount; ++st) {
            m_stage_[st]->observe(p.timeline.stage_seconds(st));
          }
          slo_->record_deadline_shed(clock_->now());
        }
        obs::instant("serve.deadline_shed", "req", p.id, "batch", ctx.batch_id);
        ++ctx.deadline_shed;
        resolved[s] = 1;
        p.promise.set_exception(std::make_exception_ptr(DeadlineError(
            "SolveService: request deadline expired at escalation pickup")));
      };
      for (std::size_t s = 0; s < members.size(); ++s) {
        if (report.records[s].converged) continue;
        Pending& p = batch[members[s]];
        const bool flagged = rung2_enabled && obs::should_escalate(report.convergence[s]);
        if (!flagged && !options_.engine_fallback) continue;
        if (p.request.deadline > 0.0 && clock_->now() >= p.request.deadline) {
          shed_deadline(s);
          continue;
        }
        // The latest failed iterate seeds whichever rung runs next.
        admm::WarmStartIterate iterate = solver.export_iterate(static_cast<int>(s));
        if (flagged) {
          ++ctx.escalations;
          obs::instant("serve.retry", "req", p.id, "escalation", 1);
          try {
            scenario::ScenarioSet solo(*p.request.network);
            scenario::Scenario sc;
            sc.name = "serve/escalate-" + std::to_string(ctx.batch_id) + "-req-" +
                      std::to_string(members[s]);
            sc.kind = p.request.outage_branch >= 0 ? scenario::ScenarioKind::kContingency
                                                   : scenario::ScenarioKind::kBase;
            sc.pd = p.request.pd;
            sc.qd = p.request.qd;
            sc.outage_branch = p.request.outage_branch;
            sc.controls = p.request.controls;
            const admm::AdmmParams effective =
                scenario::effective_params(params_, p.request.controls);
            sc.controls.max_inner_iterations = static_cast<int>(std::min(
                static_cast<double>(effective.max_inner_iterations) *
                    options_.escalation_budget_boost,
                1e9));
            sc.controls.max_outer_iterations = static_cast<int>(std::min(
                static_cast<double>(effective.max_outer_iterations) *
                    options_.escalation_budget_boost,
                1e9));
            solo.add(std::move(sc));
            scenario::BatchAdmmSolver rescue(solo, params_, &device);
            scenario::BatchSolveOptions rescue_options;
            rescue_options.layout = options_.layout;
            rescue_options.branch_pack = options_.branch_pack;
            rescue_options.convergence_sample_interval = options_.convergence_sample_interval;
            rescue_options.initial_iterates.assign(1, &iterate);
            device::LaunchStats rescue_launches;
            scenario::ScenarioReport rescue_report;
            {
              device::LaunchStatsScope scope(device, rescue_launches);
              rescue_report = rescue.solve(rescue_options);
            }
            ctx.launches += rescue_launches;
            if (rescue_report.records[0].converged) {
              ++ctx.escalations_recovered;
              solutions[s] = rescue.solutions()[0];
              report.stats[s] = rescue_report.stats[0];
              report.records[s] = rescue_report.records[0];
              if (!rescue_report.convergence.empty()) {
                report.convergence[s] = std::move(rescue_report.convergence[0]);
              }
              escalated[s] = 1;
              engine[s] = static_cast<char>(SolveEngine::kEscalatedAdmm);
              if (use_cache && !p.request.bypass_cache) {
                cache_.insert(
                    p.fingerprint, p.request.pd, p.request.qd,
                    std::make_shared<admm::WarmStartIterate>(rescue.export_iterate(0)));
              }
            } else {
              // The boosted retry made progress even though it missed
              // tolerance: hand its iterate (not rung 1's) to the IPM.
              iterate = rescue.export_iterate(0);
            }
          } catch (...) {
            // Keep the original non-converged result (and rung 1's
            // iterate); the solo retry never turns a served answer into a
            // failure.
          }
        }
        if (!options_.engine_fallback || report.records[s].converged) continue;
        // ---- Rung 3: warm-started MiniIPM re-solve ----
        if (p.request.deadline > 0.0 && clock_->now() >= p.request.deadline) {
          shed_deadline(s);
          continue;
        }
        double budget = options_.ipm_budget_seconds;
        if (p.request.deadline > 0.0) {
          const double remaining = p.request.deadline - clock_->now();
          budget = budget > 0.0 ? std::min(budget, remaining) : remaining;
        }
        ++ctx.ipm_attempts;
        obs::instant("serve.ipm_rescue", "req", p.id, "batch", ctx.batch_id);
        try {
          scenario::Scenario sc;
          sc.name = "serve/ipm-" + std::to_string(ctx.batch_id) + "-req-" +
                    std::to_string(members[s]);
          sc.kind = p.request.outage_branch >= 0 ? scenario::ScenarioKind::kContingency
                                                 : scenario::ScenarioKind::kBase;
          sc.pd = p.request.pd;
          sc.qd = p.request.qd;
          sc.outage_branch = p.request.outage_branch;
          scenario::IpmEngineOptions ipm_options;
          ipm_options.ipm.tolerance = options_.ipm_tolerance;
          ipm_options.ipm.max_iterations = options_.ipm_max_iterations;
          ipm_options.wall_budget_seconds = budget;
          const grid::OpfSolution warm = admm::to_solution(iterate, *p.request.network);
          scenario::IpmEngineResult rescue =
              scenario::solve_scenario_ipm(*p.request.network, sc, ipm_options, &warm);
          solutions[s] = std::move(rescue.solution);
          report.records[s].converged = true;
          report.records[s].objective = rescue.quality.objective;
          report.records[s].max_violation = rescue.quality.max_violation;
          escalated[s] = 1;
          engine[s] = static_cast<char>(SolveEngine::kIpm);
        } catch (...) {
          // Decisive failure: the future carries the typed error
          // (ConvergenceError, NumericalError, ...) instead of a silently
          // non-converged result.
          ++ctx.ipm_failures;
          fail_request(p, std::current_exception(), /*reached_solve=*/true, ctx);
          resolved[s] = 1;
        }
      }
    }
  } catch (...) {
    // Partial launches of the failed attempt still happened on the device:
    // keep them in the batch's attribution.
    ctx.launches += attempt_launches;
    throw;
  }
  ctx.launches += attempt_launches;
  ctx.solved_any = true;

  // ---- Fulfill futures ----
  const double completion_time = clock_->now();
  std::uint64_t last_fulfill_ns = extract_ns;
  for (std::size_t s = 0; s < members.size(); ++s) {
    // Slots the escalation ladder already settled (deadline shed at rung
    // pickup, typed IPM failure) carry no future to fulfill here.
    if (resolved[s]) continue;
    Pending& p = batch[members[s]];
    SolveResult result;
    result.solution = std::move(solutions[s]);
    result.stats = report.stats[s];
    result.converged = report.records[s].converged;
    result.objective = report.records[s].objective;
    result.max_violation = report.records[s].max_violation;
    result.batch_id = ctx.batch_id;
    result.batch_occupancy = static_cast<int>(members.size());
    result.cache_hit = p.seed.iterate != nullptr;
    result.cache_distance = p.seed.distance;
    result.solve_attempts = ctx.attempts;
    result.escalated = escalated[s] != 0;
    result.engine = static_cast<SolveEngine>(engine[s]);
    result.wait_seconds = ctx.dispatch_time - p.submit_time;
    result.total_seconds = completion_time - p.submit_time;
    if (!report.convergence.empty()) result.trajectory = std::move(report.convergence[s]);
    if (ctx.timeline_on) {
      // Fan the batch-scoped stamps out to the request, add the
      // per-request fulfill stamp, and ship the timeline with the result.
      p.timeline.dispatch_ns = ctx.dispatch_ns;
      p.timeline.form_ns = ctx.form_ns;
      p.timeline.stage_ns = stage_ns;
      p.timeline.solve_ns = solve_ns;
      p.timeline.extract_ns = extract_ns;
      p.timeline.fulfill_ns = obs::now_ns();
      last_fulfill_ns = p.timeline.fulfill_ns;
      result.timeline = p.timeline;
    }
    if (slo_ != nullptr) {
      for (int st = 0; st < RequestTimeline::kStageCount; ++st) {
        m_stage_[st]->observe(p.timeline.stage_seconds(st));
      }
      slo_->record_latency(result.total_seconds, completion_time);
    }
    ctx.latencies.push_back(result.total_seconds);
    m_latency_->observe(result.total_seconds);
    m_engine_latency_[static_cast<int>(engine[s])]->observe(result.total_seconds);
    obs::instant("serve.fulfill.req", "req", p.id, "batch", ctx.batch_id);
    ++ctx.completed;
    switch (static_cast<SolveEngine>(engine[s])) {
      case SolveEngine::kAdmm: ++ctx.completed_admm; break;
      case SolveEngine::kEscalatedAdmm: ++ctx.completed_escalated_admm; break;
      case SolveEngine::kIpm: ++ctx.completed_ipm; break;
    }
    p.promise.set_value(std::move(result));
  }
  if (ctx.timeline_on) {
    obs::span_between("serve.fulfill", extract_ns, last_fulfill_ns, "batch", ctx.batch_id,
                      "size", static_cast<std::uint64_t>(members.size()));
  }
}

void SolveService::fail_request(Pending& p, std::exception_ptr error, bool reached_solve,
                                BatchContext& ctx) {
  if (ctx.timeline_on) {
    // Failed requests get timelines too (ISSUE 9): the stamps they earned
    // plus a fulfill stamp, so failure shows up in the stage histograms
    // instead of silently vanishing from the telemetry.
    p.timeline.dispatch_ns = ctx.dispatch_ns;
    if (reached_solve) p.timeline.form_ns = ctx.form_ns;
    p.timeline.fulfill_ns = obs::now_ns();
  }
  if (slo_ != nullptr) {
    for (int st = 0; st < RequestTimeline::kStageCount; ++st) {
      m_stage_[st]->observe(p.timeline.stage_seconds(st));
    }
  }
  if (reached_solve) {
    ++ctx.failed_solve;
  } else {
    ++ctx.failed_form;
  }
  obs::instant("serve.fail.req", "req", p.id, "batch", ctx.batch_id);
  p.promise.set_exception(std::move(error));
}

void SolveService::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  draining_ = true;
  cv_work_.notify_all();
  cv_shard_.notify_all();
  cv_idle_.wait(lock, [&] { return queue_.empty() && pending_total_ == 0; });
}

ServiceStats SolveService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServiceStats snapshot = live_;
  snapshot.queue_depth = static_cast<int>(queue_.size());
  snapshot.dispatch_backlog = 0;
  for (const auto& batch : dispatched_) {
    snapshot.dispatch_backlog += static_cast<int>(batch.requests.size());
  }
  snapshot.in_flight = 0;
  for (const auto& shard : snapshot.per_shard) snapshot.in_flight += shard.in_flight;
  for (std::size_t d = 0; d < shard_health_.size(); ++d) {
    snapshot.per_shard[d].state = static_cast<int>(shard_health_[d].state);
    snapshot.per_shard[d].consecutive_failures = shard_health_[d].consecutive_failures;
    m_shard_state_[d]->set(static_cast<double>(snapshot.per_shard[d].state));
  }
  snapshot.cache_hits = cache_.hits();
  snapshot.cache_misses = cache_.misses();
  snapshot.cache_entries = static_cast<std::uint64_t>(cache_.size());
  snapshot.p50_latency = latency_quantile(latency_samples_, 0.50);
  snapshot.p95_latency = latency_quantile(latency_samples_, 0.95);
  snapshot.p99_latency = latency_quantile(latency_samples_, 0.99);
  // Refresh the registry's gauges from the same locked snapshot, so the
  // Prometheus exposition and ServiceStats agree at snapshot time.
  m_queue_depth_->set(static_cast<double>(snapshot.queue_depth));
  m_in_flight_->set(static_cast<double>(snapshot.in_flight));
  return snapshot;
}

}  // namespace gridadmm::serve
