// Per-request stage timeline: eight timestamps on the obs::now_ns()
// trace clock, stamped as a request moves admit -> queue -> dispatch ->
// form -> stage -> solve -> extract -> fulfill. The same stamps feed the
// tracer's span_between() calls, so a request's timeline and its trace
// spans can never drift apart — one clock, one set of instants, two
// views (this is the non-drift invariant DESIGN.md §11 documents).
//
// Consecutive stamps telescope: stage_seconds(0..6) sums exactly to
// total_seconds(). The struct is a POD carried inside serve::Pending and
// copied into each SolveResult at fulfillment — no allocation anywhere.
//
// Batch-scoped stages (everything from queue_ns through extract_ns) are
// stamped once per batch and shared by all requests in it; admit_ns and
// fulfill_ns are per-request.
#pragma once

#include <array>
#include <cstdint>

namespace gridadmm::serve {

struct RequestTimeline {
  std::uint64_t admit_ns = 0;     ///< submit() accepted the request
  std::uint64_t queue_ns = 0;     ///< dispatcher popped it from the queue
  std::uint64_t dispatch_ns = 0;  ///< a shard worker picked up its batch
  std::uint64_t form_ns = 0;      ///< batch ScenarioSet + seeds formed
  std::uint64_t stage_ns = 0;     ///< solver constructed / device staged
  std::uint64_t solve_ns = 0;     ///< ADMM solve returned
  std::uint64_t extract_ns = 0;   ///< per-request results extracted
  std::uint64_t fulfill_ns = 0;   ///< promise fulfilled (result visible)

  static constexpr int kStageCount = 7;

  static const char* stage_name(int stage) {
    constexpr const char* kNames[kStageCount] = {
        "queue", "dispatch", "form", "stage", "solve", "extract", "fulfill"};
    return (stage >= 0 && stage < kStageCount) ? kNames[stage] : "?";
  }

  /// The eight stamps in stage order; stage i spans stamps[i]..stamps[i+1].
  [[nodiscard]] std::array<std::uint64_t, kStageCount + 1> stamps() const {
    return {admit_ns, queue_ns,  dispatch_ns, form_ns,
            stage_ns, solve_ns, extract_ns,  fulfill_ns};
  }

  /// Duration of stage `stage` in seconds.
  [[nodiscard]] double stage_seconds(int stage) const {
    if (stage < 0 || stage >= kStageCount) return 0.0;
    const auto s = stamps();
    const std::uint64_t begin = s[static_cast<std::size_t>(stage)];
    const std::uint64_t end = s[static_cast<std::size_t>(stage) + 1];
    return end > begin ? static_cast<double>(end - begin) * 1e-9 : 0.0;
  }

  /// End-to-end latency, admit to fulfill.
  [[nodiscard]] double total_seconds() const {
    return fulfill_ns > admit_ns ? static_cast<double>(fulfill_ns - admit_ns) * 1e-9 : 0.0;
  }

  /// True once every stamp is set and the sequence is monotone.
  [[nodiscard]] bool complete() const {
    const auto s = stamps();
    if (s.front() == 0 || s.back() == 0) return false;
    for (std::size_t i = 0; i + 1 < s.size(); ++i) {
      if (s[i + 1] < s[i]) return false;
    }
    return true;
  }
};

}  // namespace gridadmm::serve
