#include "tron/tron.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace gridadmm::tron {

using detail::kDeltaMax;
using detail::kEta0;
using detail::kEtaGrow;
using detail::kEtaShrink;
using detail::kMaxSearchSteps;
using detail::kSigmaGrow;
using detail::kSigmaShrink;
using detail::clamp;

void TronSolver::resize(int n) {
  if (n == n_) return;
  n_ = n;
  lower_.assign(n, 0.0);
  upper_.assign(n, 0.0);
  x_.assign(n, 0.0);
  g_.assign(n, 0.0);
  s_.assign(n, 0.0);
  s_try_.assign(n, 0.0);
  grad_q_.assign(n, 0.0);
  w_full_.assign(n, 0.0);
  r_.assign(n, 0.0);
  z_.assign(n, 0.0);
  p_.assign(n, 0.0);
  hp_.assign(n, 0.0);
  wf_.assign(n, 0.0);
  hess_.resize(n, n);
  hess_ff_.resize(n, n);
  chol_.resize(n, n);
}

double TronSolver::quadratic_value(std::span<const double> s) const {
  // q(s) = g's + 0.5 s'Hs
  double gs = 0.0;
  double shs = 0.0;
  for (int i = 0; i < n_; ++i) {
    gs += g_[i] * s[i];
    double hi = 0.0;
    for (int j = 0; j < n_; ++j) hi += hess_(i, j) * s[j];
    shs += s[i] * hi;
  }
  return gs + 0.5 * shs;
}

double TronSolver::cauchy_step(double alpha, std::span<double> s) const {
  for (int i = 0; i < n_; ++i) {
    s[i] = clamp(x_[i] - alpha * g_[i], lower_[i], upper_[i]) - x_[i];
  }
  return quadratic_value(s);
}

int TronSolver::subspace_cg(const std::vector<int>& free, double radius, std::span<double> w,
                            bool& hit_boundary) {
  const int nf = static_cast<int>(free.size());
  hit_boundary = false;
  // Reduced residual r = -(g + H s) on the free set, w starts at 0.
  for (int a = 0; a < nf; ++a) {
    r_[a] = -grad_q_[free[a]];
    wf_[a] = 0.0;
  }
  // Reduced Hessian and its shifted Cholesky factor as preconditioner
  // (exact modified Newton preconditioner: the small dense analogue of the
  // incomplete Cholesky used by Lin-More at scale).
  for (int a = 0; a < nf; ++a) {
    for (int b = 0; b < nf; ++b) hess_ff_(a, b) = hess_(free[a], free[b]);
  }
  chol_ = hess_ff_;
  linalg::shifted_cholesky(chol_, nf);

  auto precondition = [&](const double* in, double* out) {
    for (int a = 0; a < nf; ++a) out[a] = in[a];
    linalg::cholesky_solve(chol_, nf, {out, static_cast<std::size_t>(nf)});
  };
  auto reduced_matvec = [&](const double* in, double* out) {
    for (int a = 0; a < nf; ++a) {
      double acc = 0.0;
      for (int b = 0; b < nf; ++b) acc += hess_ff_(a, b) * in[b];
      out[a] = acc;
    }
  };
  auto boundary_step = [&](const double* dir) {
    // tau >= 0 with || w + tau dir || = radius.
    double ww = 0.0, wd = 0.0, dd = 0.0;
    for (int a = 0; a < nf; ++a) {
      ww += wf_[a] * wf_[a];
      wd += wf_[a] * dir[a];
      dd += dir[a] * dir[a];
    }
    const double disc = std::max(wd * wd - dd * (ww - radius * radius), 0.0);
    const double tau = dd > 0.0 ? (-wd + std::sqrt(disc)) / dd : 0.0;
    for (int a = 0; a < nf; ++a) wf_[a] += tau * dir[a];
  };

  const double rnorm0 = std::sqrt(
      linalg::dot({r_.data(), static_cast<std::size_t>(nf)}, {r_.data(), static_cast<std::size_t>(nf)}));
  const double target = options_.cg_rtol * rnorm0;
  precondition(r_.data(), z_.data());
  for (int a = 0; a < nf; ++a) p_[a] = z_[a];
  double rz = linalg::dot({r_.data(), static_cast<std::size_t>(nf)},
                          {z_.data(), static_cast<std::size_t>(nf)});
  int iters = 0;
  for (; iters < 2 * nf + 4; ++iters) {
    double rnorm = 0.0;
    for (int a = 0; a < nf; ++a) rnorm += r_[a] * r_[a];
    if (std::sqrt(rnorm) <= target) break;
    reduced_matvec(p_.data(), hp_.data());
    double php = 0.0;
    for (int a = 0; a < nf; ++a) php += p_[a] * hp_[a];
    if (php <= 0.0) {
      // Negative curvature: follow the direction to the boundary [13].
      boundary_step(p_.data());
      hit_boundary = true;
      ++iters;
      break;
    }
    const double alpha = rz / php;
    double wnorm2 = 0.0;
    for (int a = 0; a < nf; ++a) {
      wf_[a] += alpha * p_[a];
      wnorm2 += wf_[a] * wf_[a];
    }
    if (std::sqrt(wnorm2) >= radius) {
      // Retreat, then advance to the trust-region boundary.
      for (int a = 0; a < nf; ++a) wf_[a] -= alpha * p_[a];
      boundary_step(p_.data());
      hit_boundary = true;
      ++iters;
      break;
    }
    for (int a = 0; a < nf; ++a) r_[a] -= alpha * hp_[a];
    precondition(r_.data(), z_.data());
    const double rz_next = linalg::dot({r_.data(), static_cast<std::size_t>(nf)},
                                       {z_.data(), static_cast<std::size_t>(nf)});
    const double beta = rz_next / rz;
    rz = rz_next;
    for (int a = 0; a < nf; ++a) p_[a] = z_[a] + beta * p_[a];
  }
  std::fill(w.begin(), w.end(), 0.0);
  for (int a = 0; a < nf; ++a) w[free[a]] = wf_[a];
  return iters;
}

TronResult TronSolver::minimize(TronProblem& problem, std::span<double> x) {
  const int n = problem.dim();
  require(static_cast<int>(x.size()) == n, "TronSolver: x size mismatch");
  resize(n);
  problem.bounds(lower_, upper_);
  for (int i = 0; i < n; ++i) {
    require(lower_[i] <= upper_[i], "TronSolver: inverted bounds");
    x_[i] = clamp(x[i], lower_[i], upper_[i]);
  }

  TronResult result;
  double f = problem.eval_f(x_);
  ++result.function_evals;
  problem.eval_gradient(x_, g_);
  problem.eval_hessian(x_, hess_);

  double gnorm0 = linalg::norm2(g_);
  double delta = options_.delta0 > 0.0 ? options_.delta0 : std::max(gnorm0, 1.0);
  double alpha_cauchy = 1.0;

  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    result.iterations = iter;
    // Projected gradient convergence test.
    double pgnorm = 0.0;
    for (int i = 0; i < n; ++i) {
      pgnorm = std::max(pgnorm, std::abs(clamp(x_[i] - g_[i], lower_[i], upper_[i]) - x_[i]));
    }
    result.projected_gradient_norm = pgnorm;
    if (pgnorm <= options_.gtol) {
      result.status = TronStatus::kConverged;
      break;
    }

    // ---- Generalized Cauchy point ----
    double alpha = alpha_cauchy;
    double q = cauchy_step(alpha, s_);
    auto sufficient = [&](double qv) {
      double gs = 0.0;
      for (int i = 0; i < n; ++i) gs += g_[i] * s_[i];
      return qv <= options_.mu0 * gs && linalg::norm2(s_) <= delta;
    };
    if (sufficient(q)) {
      // Extrapolate while the larger step still satisfies the conditions.
      for (int k = 0; k < kMaxSearchSteps; ++k) {
        const double alpha_next = alpha * 10.0;
        const double q_next = cauchy_step(alpha_next, s_try_);
        double gs = 0.0;
        for (int i = 0; i < n; ++i) gs += g_[i] * s_try_[i];
        if (q_next <= options_.mu0 * gs && linalg::norm2(s_try_) <= delta) {
          alpha = alpha_next;
          std::copy(s_try_.begin(), s_try_.end(), s_.begin());
          q = q_next;
        } else {
          break;
        }
      }
    } else {
      for (int k = 0; k < kMaxSearchSteps && !sufficient(q); ++k) {
        alpha *= 0.1;
        q = cauchy_step(alpha, s_);
      }
    }
    alpha_cauchy = alpha;

    // ---- Subspace refinement (minor iterations) ----
    for (int minor = 0; minor < options_.max_minor_iterations; ++minor) {
      // grad of the quadratic at s: g + H s.
      for (int i = 0; i < n; ++i) {
        double acc = g_[i];
        for (int j = 0; j < n; ++j) acc += hess_(i, j) * s_[j];
        grad_q_[i] = acc;
      }
      free_.clear();
      const double tol_bound = 1e-12;
      for (int i = 0; i < n; ++i) {
        const double xi = x_[i] + s_[i];
        if (xi > lower_[i] + tol_bound && xi < upper_[i] - tol_bound) free_.push_back(i);
      }
      const auto& free = free_;
      if (free.empty()) break;
      double rnorm = 0.0;
      for (const int i : free) rnorm += grad_q_[i] * grad_q_[i];
      if (std::sqrt(rnorm) <= options_.cg_rtol * std::max(gnorm0, 1e-12)) break;
      const double radius = delta - linalg::norm2(s_);
      if (radius <= 1e-12) break;

      bool hit_boundary = false;
      result.cg_iterations += subspace_cg(free, radius, w_full_, hit_boundary);

      // Projected Armijo search along w.
      const double q_s = quadratic_value(s_);
      double beta = 1.0;
      bool accepted = false;
      for (int k = 0; k < kMaxSearchSteps; ++k) {
        for (int i = 0; i < n; ++i) {
          s_try_[i] = clamp(x_[i] + s_[i] + beta * w_full_[i], lower_[i], upper_[i]) - x_[i];
        }
        const double q_try = quadratic_value(s_try_);
        double dir = 0.0;
        for (int i = 0; i < n; ++i) dir += grad_q_[i] * (s_try_[i] - s_[i]);
        if (q_try <= q_s + options_.mu0 * std::min(dir, 0.0)) {
          std::copy(s_try_.begin(), s_try_.end(), s_.begin());
          accepted = true;
          break;
        }
        beta *= 0.5;
      }
      if (!accepted || hit_boundary) break;
    }

    // ---- Accept / reject and trust-region update ----
    for (int i = 0; i < n; ++i) s_try_[i] = clamp(x_[i] + s_[i], lower_[i], upper_[i]);
    const double f_try = problem.eval_f(s_try_);
    ++result.function_evals;
    const double ared = f - f_try;
    const double pred = -quadratic_value(s_);
    const double snorm = linalg::norm2(s_);
    const double ratio = pred > 0.0 ? ared / pred : (ared > 0.0 ? 1.0 : -1.0);

    if (ratio > kEta0 && std::isfinite(f_try)) {
      const double reduction = std::abs(ared);
      std::copy(s_try_.begin(), s_try_.end(), x_.begin());
      f = f_try;
      problem.eval_gradient(x_, g_);
      problem.eval_hessian(x_, hess_);
      gnorm0 = std::max(linalg::norm2(g_), 1e-12);
      if (reduction <= options_.frtol * std::max(std::abs(f), 1.0)) {
        result.iterations = iter + 1;
        result.status = TronStatus::kSmallReduction;
        break;
      }
    }
    if (ratio < kEtaShrink) {
      delta = std::max(kSigmaShrink * std::min(snorm, delta), 1e-12);
    } else if (ratio > kEtaGrow && snorm >= 0.9 * delta) {
      delta = std::min(kSigmaGrow * delta, kDeltaMax);
    }
    if (delta <= 1e-12) {
      result.status = TronStatus::kLineSearchFailed;
      break;
    }
  }

  result.f = f;
  std::copy(x_.begin(), x_.end(), x.begin());
  return result;
}

}  // namespace gridadmm::tron
