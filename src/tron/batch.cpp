#include "tron/batch.hpp"

#include <algorithm>
#include <mutex>

#include "common/error.hpp"

namespace gridadmm::tron {

BatchResult solve_batch(device::Device& dev, std::span<const std::unique_ptr<TronProblem>> problems,
                        std::span<std::vector<double>> xs, const TronOptions& options) {
  require(problems.size() == xs.size(), "solve_batch: problems/xs size mismatch");
  std::vector<TronSolver> solvers;
  solvers.reserve(static_cast<std::size_t>(dev.workers()));
  for (int lane = 0; lane < dev.workers(); ++lane) solvers.emplace_back(options);

  std::vector<TronResult> results(problems.size());
  dev.launch_with_lane(static_cast<int>(problems.size()), [&](int block, int lane) {
    results[block] = solvers[lane].minimize(*problems[block], xs[block]);
  });

  BatchResult batch;
  for (const auto& r : results) {
    if (r.status == TronStatus::kConverged || r.status == TronStatus::kSmallReduction) {
      ++batch.solved;
    }
    batch.total_iterations += r.iterations;
    batch.total_cg_iterations += r.cg_iterations;
    batch.max_projected_gradient = std::max(batch.max_projected_gradient, r.projected_gradient_norm);
  }
  return batch;
}

}  // namespace gridadmm::tron
