// Bound-constrained trust-region Newton solver (TRON).
//
// Reimplementation of the algorithm of Lin & More, "Newton's method for
// large bound-constrained optimization problems" (SIAM J. Optim. 1999) in
// the dense, small-problem setting of ExaTron [paper ref 8]: a generalized
// Cauchy point, subspace refinement with a trust-region preconditioned
// conjugate gradient (Steihaug-Toint, following negative curvature to the
// boundary as in [paper ref 13]), and projected line searches.
//
// Each ADMM branch subproblem (4-6 variables) is one TronProblem; the batch
// driver in tron/batch.hpp runs thousands of them in parallel on the
// simulated GPU, one block per subproblem, mirroring the paper's Section
// III-B.
#pragma once

#include <span>
#include <vector>

#include "linalg/dense.hpp"

namespace gridadmm::tron {

/// Problem interface: smooth objective over box constraints.
class TronProblem {
 public:
  virtual ~TronProblem() = default;
  [[nodiscard]] virtual int dim() const = 0;
  virtual void bounds(std::span<double> lower, std::span<double> upper) const = 0;
  virtual double eval_f(std::span<const double> x) = 0;
  virtual void eval_gradient(std::span<const double> x, std::span<double> grad) = 0;
  /// Fills the full symmetric Hessian (dim x dim).
  virtual void eval_hessian(std::span<const double> x, linalg::DenseMatrix& hess) = 0;
};

struct TronOptions {
  int max_iterations = 200;
  double gtol = 1e-8;        ///< convergence: inf-norm of the projected gradient
  double frtol = 1e-14;      ///< convergence: relative function reduction
  double delta0 = -1.0;      ///< initial trust radius (<0: use ||g0||)
  double cg_rtol = 0.05;     ///< relative residual target of the subspace CG
  int max_minor_iterations = 8;  ///< subspace refinement rounds per major iteration
  double mu0 = 0.01;         ///< sufficient-decrease parameter
};

// Trust-region control constants of the Lin-More algorithm, shared by the
// generic TronSolver and the fixed-dimension SmallTronSolver (small_tron.hpp)
// so the two paths cannot drift: the fast path is bit-identical to the
// generic one precisely because every constant and operation is the same.
namespace detail {
inline constexpr double kSigmaShrink = 0.25;   // trust-region shrink factor
inline constexpr double kSigmaGrow = 4.0;      // trust-region growth factor
inline constexpr double kEta0 = 1e-4;          // step acceptance threshold
inline constexpr double kEtaShrink = 0.25;     // ratio below which the region shrinks
inline constexpr double kEtaGrow = 0.75;       // ratio above which the region grows
inline constexpr double kDeltaMax = 1e10;
inline constexpr int kMaxSearchSteps = 25;     // backtracking/extrapolation cap

inline double clamp(double v, double lo, double hi) {
  return v < lo ? lo : (v > hi ? hi : v);
}
}  // namespace detail

enum class TronStatus {
  kConverged,      ///< projected gradient below gtol
  kSmallReduction, ///< function reduction below frtol (practically converged)
  kMaxIterations,
  kLineSearchFailed
};

struct TronResult {
  TronStatus status = TronStatus::kMaxIterations;
  int iterations = 0;       ///< major (Newton) iterations
  int cg_iterations = 0;    ///< total CG iterations
  int function_evals = 0;
  double f = 0.0;
  double projected_gradient_norm = 0.0;
};

/// Reusable solver. Not thread-safe; use one instance per device lane.
class TronSolver {
 public:
  explicit TronSolver(TronOptions options = {}) : options_(options) {}

  /// Minimizes `problem` starting from (a clamped copy of) `x`; the solution
  /// is written back into `x`. `x.size()` must equal `problem.dim()`.
  TronResult minimize(TronProblem& problem, std::span<double> x);

  [[nodiscard]] const TronOptions& options() const { return options_; }
  TronOptions& options() { return options_; }

 private:
  void resize(int n);
  double quadratic_value(std::span<const double> s) const;  // g's + s'Hs/2
  /// s = P[x - alpha g] - x; returns q(s).
  double cauchy_step(double alpha, std::span<double> s) const;
  /// Trust-region PCG on the free subspace; returns CG iterations.
  int subspace_cg(const std::vector<int>& free, double radius, std::span<double> w,
                  bool& hit_boundary);

  TronOptions options_;
  int n_ = 0;
  std::vector<double> lower_, upper_, x_, g_, s_, s_try_, grad_q_, w_full_;
  std::vector<double> r_, z_, p_, hp_, wf_;
  std::vector<int> free_;
  linalg::DenseMatrix hess_, hess_ff_, chol_;
};

}  // namespace gridadmm::tron
