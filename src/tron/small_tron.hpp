// Fixed-dimension, devirtualized TRON: the branch-kernel fast path.
//
// TronSolver (tron.hpp) is a generic solver: virtual TronProblem dispatch
// on every objective/gradient/Hessian evaluation and heap-allocated
// workspaces sized at runtime. For the ADMM branch subproblems — 4 or 6
// variables, solved millions of times per batch — that generality is pure
// overhead: the dimension is a compile-time fact of the problem family.
// SmallTronSolver<N> is the ExaTron-style specialization (Kim & Kim,
// arXiv:2110.06879): every workspace is a stack array of exactly N doubles,
// the symmetric factorization and subspace CG run over SmallMatrix<N>
// (linalg/small.hpp), and the problem is a template parameter, so every
// evaluation call binds statically (no vtable) and every full-space loop
// has a compile-time trip count the compiler can unroll.
//
// The algorithm is an exact operation-for-operation transcription of
// TronSolver::minimize — same constants (tron.hpp detail), same evaluation
// order, same reductions through the same linalg::dot/norm2 kernels — so
// the iterates are bit-identical to the generic solver's, which is what
// lets the batch engine switch paths without changing a single result
// (asserted by tests/test_tron.cpp and tests/test_batch_admm.cpp).
//
// On top of the transcription, two classes of redundant work are removed —
// both provably value-preserving, so bit-identity survives:
//   - Fused point evaluation: the problem's prepared surface
//     (eval_f_prepared / eval_gradient_prepared / eval_hessian_prepared)
//     derives f, gradient, and Hessian from ONE trigonometric + Jacobian
//     evaluation per point, where the generic virtual interface re-derives
//     the flows for each of the three calls. Gradient/Hessian are only
//     ever needed at the point whose objective was just evaluated, so the
//     cache is always hot.
//   - Exact quadratic reuse: the solver tracks q(s) through the Cauchy and
//     Armijo updates (each already computes the quadratic value of the s
//     it installs), so the minor loop's q_s and the acceptance test's
//     predicted reduction reuse the tracked double instead of re-running
//     the N^2 quadratic form on bitwise-identical inputs.
#pragma once

#include <algorithm>
#include <cmath>
#include <span>

#include "common/error.hpp"
#include "linalg/dense.hpp"
#include "linalg/small.hpp"
#include "tron/tron.hpp"

namespace gridadmm::tron {

/// Reusable fixed-dimension solver; the problem's dim() must equal N.
/// Not thread-safe; use one instance per device lane.
template <int N>
class SmallTronSolver {
 public:
  explicit SmallTronSolver(TronOptions options = {}) : options_(options) {}

  /// Minimizes `problem` starting from (a clamped copy of) `x`; the
  /// solution is written back into `x`. `Problem` needs dim(), bounds(),
  /// and the prepared (fused) evaluation surface: eval_f_prepared,
  /// eval_gradient_prepared, eval_hessian_prepared(x, SmallMatrix<N>&) —
  /// see admm::BranchProblem. Calls bind statically to the concrete type.
  template <typename Problem>
  TronResult minimize(Problem& problem, std::span<double> x);

  [[nodiscard]] const TronOptions& options() const { return options_; }
  TronOptions& options() { return options_; }

 private:
  [[nodiscard]] double quadratic_value(const double* s) const;  // g's + s'Hs/2
  /// s = P[x - alpha g] - x; returns q(s).
  double cauchy_step(double alpha, double* s) const;
  /// Trust-region PCG on the free subspace; returns CG iterations.
  int subspace_cg(int nf, double radius, double* w, bool& hit_boundary);

  TronOptions options_;
  double lower_[N] = {}, upper_[N] = {}, x_[N] = {}, g_[N] = {}, s_[N] = {}, s_try_[N] = {},
         grad_q_[N] = {}, w_full_[N] = {};
  double r_[N] = {}, z_[N] = {}, p_[N] = {}, hp_[N] = {}, wf_[N] = {};
  int free_[N] = {};
  linalg::SmallMatrix<N> hess_, hess_ff_, chol_;
};

template <int N>
double SmallTronSolver<N>::quadratic_value(const double* s) const {
  // q(s) = g's + 0.5 s'Hs
  double gs = 0.0;
  double shs = 0.0;
  for (int i = 0; i < N; ++i) {
    gs += g_[i] * s[i];
    double hi = 0.0;
    for (int j = 0; j < N; ++j) hi += hess_(i, j) * s[j];
    shs += s[i] * hi;
  }
  return gs + 0.5 * shs;
}

template <int N>
double SmallTronSolver<N>::cauchy_step(double alpha, double* s) const {
  for (int i = 0; i < N; ++i) {
    s[i] = detail::clamp(x_[i] - alpha * g_[i], lower_[i], upper_[i]) - x_[i];
  }
  return quadratic_value(s);
}

template <int N>
int SmallTronSolver<N>::subspace_cg(int nf, double radius, double* w, bool& hit_boundary) {
  hit_boundary = false;
  // Reduced residual r = -(g + H s) on the free set, w starts at 0.
  for (int a = 0; a < nf; ++a) {
    r_[a] = -grad_q_[free_[a]];
    wf_[a] = 0.0;
  }
  // Reduced Hessian and its shifted Cholesky factor as preconditioner
  // (exact modified Newton preconditioner, as in the generic solver).
  for (int a = 0; a < nf; ++a) {
    for (int b = 0; b < nf; ++b) hess_ff_(a, b) = hess_(free_[a], free_[b]);
  }
  chol_ = hess_ff_;
  linalg::shifted_cholesky(chol_, nf);

  auto precondition = [&](const double* in, double* out) {
    for (int a = 0; a < nf; ++a) out[a] = in[a];
    linalg::cholesky_solve(chol_, nf, {out, static_cast<std::size_t>(nf)});
  };
  auto reduced_matvec = [&](const double* in, double* out) {
    for (int a = 0; a < nf; ++a) {
      double acc = 0.0;
      for (int b = 0; b < nf; ++b) acc += hess_ff_(a, b) * in[b];
      out[a] = acc;
    }
  };
  auto boundary_step = [&](const double* dir) {
    // tau >= 0 with || w + tau dir || = radius.
    double ww = 0.0, wd = 0.0, dd = 0.0;
    for (int a = 0; a < nf; ++a) {
      ww += wf_[a] * wf_[a];
      wd += wf_[a] * dir[a];
      dd += dir[a] * dir[a];
    }
    const double disc = std::max(wd * wd - dd * (ww - radius * radius), 0.0);
    const double tau = dd > 0.0 ? (-wd + std::sqrt(disc)) / dd : 0.0;
    for (int a = 0; a < nf; ++a) wf_[a] += tau * dir[a];
  };

  const double rnorm0 = std::sqrt(
      linalg::dot({r_, static_cast<std::size_t>(nf)}, {r_, static_cast<std::size_t>(nf)}));
  const double target = options_.cg_rtol * rnorm0;
  precondition(r_, z_);
  for (int a = 0; a < nf; ++a) p_[a] = z_[a];
  double rz = linalg::dot({r_, static_cast<std::size_t>(nf)}, {z_, static_cast<std::size_t>(nf)});
  int iters = 0;
  for (; iters < 2 * nf + 4; ++iters) {
    double rnorm = 0.0;
    for (int a = 0; a < nf; ++a) rnorm += r_[a] * r_[a];
    if (std::sqrt(rnorm) <= target) break;
    reduced_matvec(p_, hp_);
    double php = 0.0;
    for (int a = 0; a < nf; ++a) php += p_[a] * hp_[a];
    if (php <= 0.0) {
      // Negative curvature: follow the direction to the boundary.
      boundary_step(p_);
      hit_boundary = true;
      ++iters;
      break;
    }
    const double alpha = rz / php;
    double wnorm2 = 0.0;
    for (int a = 0; a < nf; ++a) {
      wf_[a] += alpha * p_[a];
      wnorm2 += wf_[a] * wf_[a];
    }
    if (std::sqrt(wnorm2) >= radius) {
      // Retreat, then advance to the trust-region boundary.
      for (int a = 0; a < nf; ++a) wf_[a] -= alpha * p_[a];
      boundary_step(p_);
      hit_boundary = true;
      ++iters;
      break;
    }
    for (int a = 0; a < nf; ++a) r_[a] -= alpha * hp_[a];
    precondition(r_, z_);
    const double rz_next =
        linalg::dot({r_, static_cast<std::size_t>(nf)}, {z_, static_cast<std::size_t>(nf)});
    const double beta = rz_next / rz;
    rz = rz_next;
    for (int a = 0; a < nf; ++a) p_[a] = z_[a] + beta * p_[a];
  }
  for (int i = 0; i < N; ++i) w[i] = 0.0;
  for (int a = 0; a < nf; ++a) w[free_[a]] = wf_[a];
  return iters;
}

template <int N>
template <typename Problem>
TronResult SmallTronSolver<N>::minimize(Problem& problem, std::span<double> x) {
  require(problem.dim() == N, "SmallTronSolver: problem dimension mismatch");
  require(static_cast<int>(x.size()) == N, "SmallTronSolver: x size mismatch");
  problem.bounds({lower_, N}, {upper_, N});
  for (int i = 0; i < N; ++i) {
    require(lower_[i] <= upper_[i], "SmallTronSolver: inverted bounds");
    x_[i] = detail::clamp(x[i], lower_[i], upper_[i]);
  }

  TronResult result;
  double f = problem.eval_f_prepared({x_, N});
  ++result.function_evals;
  problem.eval_gradient_prepared({x_, N}, {g_, N});
  problem.eval_hessian_prepared({x_, N}, hess_);

  double gnorm0 = linalg::norm2({g_, N});
  double delta = options_.delta0 > 0.0 ? options_.delta0 : std::max(gnorm0, 1.0);
  double alpha_cauchy = 1.0;

  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    result.iterations = iter;
    // Projected gradient convergence test.
    double pgnorm = 0.0;
    for (int i = 0; i < N; ++i) {
      pgnorm = std::max(pgnorm,
                        std::abs(detail::clamp(x_[i] - g_[i], lower_[i], upper_[i]) - x_[i]));
    }
    result.projected_gradient_norm = pgnorm;
    if (pgnorm <= options_.gtol) {
      result.status = TronStatus::kConverged;
      break;
    }

    // ---- Generalized Cauchy point ----
    double alpha = alpha_cauchy;
    double q = cauchy_step(alpha, s_);
    auto sufficient = [&](double qv) {
      double gs = 0.0;
      for (int i = 0; i < N; ++i) gs += g_[i] * s_[i];
      return qv <= options_.mu0 * gs && linalg::norm2({s_, N}) <= delta;
    };
    if (sufficient(q)) {
      // Extrapolate while the larger step still satisfies the conditions.
      for (int k = 0; k < detail::kMaxSearchSteps; ++k) {
        const double alpha_next = alpha * 10.0;
        const double q_next = cauchy_step(alpha_next, s_try_);
        double gs = 0.0;
        for (int i = 0; i < N; ++i) gs += g_[i] * s_try_[i];
        if (q_next <= options_.mu0 * gs && linalg::norm2({s_try_, N}) <= delta) {
          alpha = alpha_next;
          std::copy(s_try_, s_try_ + N, s_);
          q = q_next;
        } else {
          break;
        }
      }
    } else {
      for (int k = 0; k < detail::kMaxSearchSteps && !sufficient(q); ++k) {
        alpha *= 0.1;
        q = cauchy_step(alpha, s_);
      }
    }
    alpha_cauchy = alpha;

    // ---- Subspace refinement (minor iterations) ----
    for (int minor = 0; minor < options_.max_minor_iterations; ++minor) {
      // grad of the quadratic at s: g + H s.
      for (int i = 0; i < N; ++i) {
        double acc = g_[i];
        for (int j = 0; j < N; ++j) acc += hess_(i, j) * s_[j];
        grad_q_[i] = acc;
      }
      int nf = 0;
      const double tol_bound = 1e-12;
      for (int i = 0; i < N; ++i) {
        const double xi = x_[i] + s_[i];
        if (xi > lower_[i] + tol_bound && xi < upper_[i] - tol_bound) free_[nf++] = i;
      }
      if (nf == 0) break;
      double rnorm = 0.0;
      for (int a = 0; a < nf; ++a) rnorm += grad_q_[free_[a]] * grad_q_[free_[a]];
      if (std::sqrt(rnorm) <= options_.cg_rtol * std::max(gnorm0, 1e-12)) break;
      const double radius = delta - linalg::norm2({s_, N});
      if (radius <= 1e-12) break;

      bool hit_boundary = false;
      result.cg_iterations += subspace_cg(nf, radius, w_full_, hit_boundary);

      // Projected Armijo search along w. q already holds quadratic_value(s_)
      // (tracked through every update of s_), so reuse it exactly.
      const double q_s = q;
      double beta = 1.0;
      bool accepted = false;
      for (int k = 0; k < detail::kMaxSearchSteps; ++k) {
        for (int i = 0; i < N; ++i) {
          s_try_[i] =
              detail::clamp(x_[i] + s_[i] + beta * w_full_[i], lower_[i], upper_[i]) - x_[i];
        }
        const double q_try = quadratic_value(s_try_);
        double dir = 0.0;
        for (int i = 0; i < N; ++i) dir += grad_q_[i] * (s_try_[i] - s_[i]);
        if (q_try <= q_s + options_.mu0 * std::min(dir, 0.0)) {
          std::copy(s_try_, s_try_ + N, s_);
          q = q_try;  // quadratic_value(s_) of the freshly installed s_
          accepted = true;
          break;
        }
        beta *= 0.5;
      }
      if (!accepted || hit_boundary) break;
    }

    // ---- Accept / reject and trust-region update ----
    for (int i = 0; i < N; ++i) s_try_[i] = detail::clamp(x_[i] + s_[i], lower_[i], upper_[i]);
    const double f_try = problem.eval_f_prepared({s_try_, N});
    ++result.function_evals;
    const double ared = f - f_try;
    const double pred = -q;  // q tracks quadratic_value(s_) exactly
    const double snorm = linalg::norm2({s_, N});
    const double ratio = pred > 0.0 ? ared / pred : (ared > 0.0 ? 1.0 : -1.0);

    if (ratio > detail::kEta0 && std::isfinite(f_try)) {
      const double reduction = std::abs(ared);
      std::copy(s_try_, s_try_ + N, x_);
      f = f_try;
      // x_ is bitwise the point eval_f_prepared just cached, so the fused
      // gradient/Hessian reads are free of any flow re-evaluation.
      problem.eval_gradient_prepared({x_, N}, {g_, N});
      problem.eval_hessian_prepared({x_, N}, hess_);
      gnorm0 = std::max(linalg::norm2({g_, N}), 1e-12);
      if (reduction <= options_.frtol * std::max(std::abs(f), 1.0)) {
        result.iterations = iter + 1;
        result.status = TronStatus::kSmallReduction;
        break;
      }
    }
    if (ratio < detail::kEtaShrink) {
      delta = std::max(detail::kSigmaShrink * std::min(snorm, delta), 1e-12);
    } else if (ratio > detail::kEtaGrow && snorm >= 0.9 * delta) {
      delta = std::min(detail::kSigmaGrow * delta, detail::kDeltaMax);
    }
    if (delta <= 1e-12) {
      result.status = TronStatus::kLineSearchFailed;
      break;
    }
  }

  result.f = f;
  std::copy(x_, x_ + N, x.begin());
  return result;
}

}  // namespace gridadmm::tron
