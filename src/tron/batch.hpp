// Batch driver: solves many small TronProblems in parallel on the simulated
// GPU, one device block per problem — the execution model of ExaTron, where
// each CUDA thread block owns one branch subproblem (paper Section III-B).
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "device/device.hpp"
#include "tron/tron.hpp"

namespace gridadmm::tron {

struct BatchResult {
  int solved = 0;              ///< problems reaching (practical) convergence
  int total_iterations = 0;    ///< sum of major iterations
  int total_cg_iterations = 0;
  double max_projected_gradient = 0.0;
};

/// Solves problems[i] starting from xs[i] (updated in place). Each problem
/// is handed to one device block; per-lane TronSolver instances keep the
/// loop allocation-free. xs[i].size() must equal problems[i]->dim().
BatchResult solve_batch(device::Device& dev, std::span<const std::unique_ptr<TronProblem>> problems,
                        std::span<std::vector<double>> xs, const TronOptions& options = {});

}  // namespace gridadmm::tron
