// Solve service demo: a burst of concurrent load-perturbed requests is
// coalesced into fused micro-batches, then a second wave of nearby loads
// hits the warm-start cache and converges in fewer iterations.
//
//   ./serve_demo [--case=case9] [--requests=8]
#include <cstdio>
#include <future>
#include <string>
#include <vector>

#include "common/options.hpp"
#include "opf/service.hpp"

int main(int argc, char** argv) {
  using namespace gridadmm;
  const Options opts(argc, argv);
  const std::string case_name = opts.get("case", "case9");
  const int requests = opts.get_int("requests", 8);

  serve::ServiceOptions options;
  options.max_batch_size = requests;
  options.batching_window_seconds = 0.05;  // generous: let the burst coalesce
  opf::OpfService service(case_name, options);

  std::printf("== wave 1: %d cold requests around the base load\n", requests);
  std::vector<std::future<serve::SolveResult>> wave1;
  for (int i = 0; i < requests; ++i) {
    wave1.push_back(service.solve_scaled(0.96 + 0.08 * i / std::max(1, requests - 1)));
  }
  int cold_iterations = 0;
  for (auto& future : wave1) {
    const auto result = future.get();
    cold_iterations += result.stats.inner_iterations;
    std::printf("  batch %llu occupancy %d  converged=%d  obj=%.2f  iters=%d  cache_hit=%d\n",
                static_cast<unsigned long long>(result.batch_id), result.batch_occupancy,
                result.converged, result.objective, result.stats.inner_iterations,
                result.cache_hit);
  }

  std::printf("== wave 2: the same loads perturbed by 1%% (warm-start cache hits)\n");
  std::vector<std::future<serve::SolveResult>> wave2;
  for (int i = 0; i < requests; ++i) {
    wave2.push_back(service.solve_scaled(1.01 * (0.96 + 0.08 * i / std::max(1, requests - 1))));
  }
  int warm_iterations = 0;
  for (auto& future : wave2) {
    const auto result = future.get();
    warm_iterations += result.stats.inner_iterations;
    std::printf("  batch %llu occupancy %d  converged=%d  obj=%.2f  iters=%d  cache_hit=%d\n",
                static_cast<unsigned long long>(result.batch_id), result.batch_occupancy,
                result.converged, result.objective, result.stats.inner_iterations,
                result.cache_hit);
  }

  service.drain();
  const auto stats = service.stats();
  std::printf("\n== service stats\n");
  std::printf("  submitted=%llu completed=%llu shed=%llu batches=%llu\n",
              static_cast<unsigned long long>(stats.submitted),
              static_cast<unsigned long long>(stats.completed),
              static_cast<unsigned long long>(stats.shed),
              static_cast<unsigned long long>(stats.batches));
  std::printf("  mean batch occupancy=%.2f  cache hit rate=%.2f  cache entries=%llu\n",
              stats.mean_batch_occupancy(), stats.cache_hit_rate(),
              static_cast<unsigned long long>(stats.cache_entries));
  std::printf("  launches=%llu  p50 latency=%.3fs  p95 latency=%.3fs\n",
              static_cast<unsigned long long>(stats.launch_stats.launches), stats.p50_latency,
              stats.p95_latency);
  std::printf("  wave1 iterations=%d  wave2 iterations=%d (warm start should be fewer)\n",
              cold_iterations, warm_iterations);
  return 0;
}
