// Using the ExaTron-style batch solver directly: solve thousands of small
// independent bound-constrained problems on the simulated GPU, one thread
// block per problem (paper Section III-B).
#include <cstdio>
#include <memory>

#include "common/options.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "device/device.hpp"
#include "tron/batch.hpp"

namespace {

/// A random strongly convex 6-variable box QP — the same shape as an ADMM
/// branch subproblem.
class RandomQp final : public gridadmm::tron::TronProblem {
 public:
  explicit RandomQp(gridadmm::Rng& rng) : q_(6, 6) {
    gridadmm::linalg::DenseMatrix basis(6, 6);
    for (int i = 0; i < 6; ++i)
      for (int j = 0; j < 6; ++j) basis(i, j) = rng.uniform(-1, 1);
    for (int i = 0; i < 6; ++i) {
      for (int j = 0; j < 6; ++j) {
        double acc = i == j ? 1.0 : 0.0;
        for (int k = 0; k < 6; ++k) acc += basis(i, k) * basis(j, k);
        q_(i, j) = acc;
      }
    }
    for (auto& v : b_) v = rng.uniform(-2, 2);
  }
  [[nodiscard]] int dim() const override { return 6; }
  void bounds(std::span<double> lower, std::span<double> upper) const override {
    for (int i = 0; i < 6; ++i) {
      lower[i] = -1.0;
      upper[i] = 1.0;
    }
  }
  double eval_f(std::span<const double> x) override {
    double f = 0.0;
    for (int i = 0; i < 6; ++i) {
      double qx = 0.0;
      for (int j = 0; j < 6; ++j) qx += q_(i, j) * x[j];
      f += 0.5 * x[i] * qx - b_[i] * x[i];
    }
    return f;
  }
  void eval_gradient(std::span<const double> x, std::span<double> grad) override {
    for (int i = 0; i < 6; ++i) {
      double qx = 0.0;
      for (int j = 0; j < 6; ++j) qx += q_(i, j) * x[j];
      grad[i] = qx - b_[i];
    }
  }
  void eval_hessian(std::span<const double>, gridadmm::linalg::DenseMatrix& hess) override {
    hess = q_;
  }

 private:
  gridadmm::linalg::DenseMatrix q_;
  double b_[6] = {0};
};

}  // namespace

int main(int argc, char** argv) {
  using namespace gridadmm;
  const Options opts(argc, argv);
  const int count = opts.get_int("count", 20000);

  Rng rng(1234);
  std::vector<std::unique_ptr<tron::TronProblem>> problems;
  std::vector<std::vector<double>> xs;
  problems.reserve(count);
  for (int i = 0; i < count; ++i) {
    problems.push_back(std::make_unique<RandomQp>(rng));
    xs.emplace_back(6, 0.0);
  }

  device::Device dev;
  std::printf("solving %d six-variable box QPs on %d workers...\n", count, dev.workers());
  WallTimer timer;
  const auto result = tron::solve_batch(dev, problems, xs);
  const double seconds = timer.seconds();
  std::printf("done in %.3f s (%.0f problems/s)\n", seconds, count / seconds);
  std::printf("solved %d/%d, %d Newton iterations, %d CG iterations total\n", result.solved,
              count, result.total_iterations, result.total_cg_iterations);
  std::printf("max projected gradient: %.2e\n", result.max_projected_gradient);
  return result.solved == count ? 0 : 1;
}
