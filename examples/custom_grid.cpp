// Building a network programmatically with the public API — a 5-bus
// microgrid with two generators — and solving it with both solvers.
#include <cstdio>

#include "grid/network.hpp"
#include "opf/opf.hpp"

int main() {
  using namespace gridadmm;

  grid::Network net;
  net.name = "microgrid5";
  net.base_mva = 100.0;

  // Five buses in a ring; loads at buses 2-4 (MW/MVAr, converted to p.u. by
  // finalize()).
  net.buses.resize(5);
  for (int i = 0; i < 5; ++i) {
    net.buses[i].id = i + 1;
    net.buses[i].vmin = 0.95;
    net.buses[i].vmax = 1.05;
  }
  net.buses[0].type = grid::BusType::kRef;
  net.buses[2].pd = 45.0;
  net.buses[2].qd = 12.0;
  net.buses[3].pd = 60.0;
  net.buses[3].qd = 18.0;
  net.buses[4].pd = 30.0;
  net.buses[4].qd = 9.0;

  // A cheap baseload unit at bus 1 and an expensive peaker at bus 4.
  grid::Generator base;
  base.bus = 0;
  base.pmax = 120.0;
  base.qmin = -60.0;
  base.qmax = 60.0;
  base.c2 = 0.01;
  base.c1 = 18.0;
  net.generators.push_back(base);
  grid::Generator peaker;
  peaker.bus = 3;
  peaker.pmax = 80.0;
  peaker.qmin = -40.0;
  peaker.qmax = 40.0;
  peaker.c2 = 0.03;
  peaker.c1 = 42.0;
  net.generators.push_back(peaker);

  auto line = [](int from, int to, double x, double rate) {
    grid::Branch branch;
    branch.from = from;
    branch.to = to;
    branch.x = x;
    branch.r = 0.1 * x;
    branch.b = 0.2 * x;
    branch.rate = rate;
    return branch;
  };
  net.branches.push_back(line(0, 1, 0.06, 100.0));
  net.branches.push_back(line(1, 2, 0.08, 80.0));
  net.branches.push_back(line(2, 3, 0.07, 80.0));
  net.branches.push_back(line(3, 4, 0.09, 80.0));
  net.branches.push_back(line(4, 0, 0.05, 100.0));
  net.branches.push_back(line(1, 3, 0.12, 60.0));  // meshing tie

  net.finalize();
  std::printf("microgrid: %d buses, %.0f MW load, %.0f MW capacity\n", net.num_buses(),
              net.total_load() * net.base_mva, 200.0);

  auto params = admm::params_for_case(net.name, net.num_buses());
  const auto admm_report = opf::solve_with_admm(net, params);
  const auto ipm_report = opf::solve_with_ipm(net);

  std::printf("ADMM : obj %.2f $/h, violation %.2e, %s\n", admm_report.quality.objective,
              admm_report.quality.max_violation, admm_report.converged ? "converged" : "FAILED");
  std::printf("IPM  : obj %.2f $/h, violation %.2e, %s\n", ipm_report.quality.objective,
              ipm_report.quality.max_violation, ipm_report.converged ? "converged" : "FAILED");
  std::printf("baseload pg = %.1f MW, peaker pg = %.1f MW\n",
              admm_report.solution.pg[0] * net.base_mva,
              admm_report.solution.pg[1] * net.base_mva);
  return 0;
}
