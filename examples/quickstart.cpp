// Quickstart: load a case, solve it with the GPU-style ADMM solver, and
// print the solution summary.
//
//   ./quickstart [--case=case9] [--rho_pq=400] [--rho_va=40000]
#include <cstdio>

#include "common/options.hpp"
#include "common/table.hpp"
#include "opf/opf.hpp"

int main(int argc, char** argv) {
  using namespace gridadmm;
  const Options opts(argc, argv);
  const std::string case_name = opts.get("case", "case9");

  const auto net = opf::load_case(case_name);
  std::printf("Loaded %s: %d buses, %d branches, %d generators, %.1f MW load\n",
              net.name.c_str(), net.num_buses(), net.num_branches(), net.num_generators(),
              net.total_load() * net.base_mva);

  auto params = admm::params_for_case(case_name, net.num_buses());
  params.rho_pq = opts.get_double("rho_pq", params.rho_pq);
  params.rho_va = opts.get_double("rho_va", params.rho_va);

  const auto report = opf::solve_with_admm(net, params);
  std::printf("\nADMM %s in %.2f s (%d inner iterations)\n",
              report.converged ? "converged" : "did NOT converge", report.seconds,
              report.iterations);
  std::printf("objective          : %.2f $/h\n", report.quality.objective);
  std::printf("max violation      : %.3e\n", report.quality.max_violation);
  std::printf("power balance      : %.3e\n", report.quality.power_balance_violation);
  std::printf("line overload      : %.3e\n", report.quality.line_violation);

  Table table({"gen", "bus", "pg (MW)", "qg (MVAr)"});
  const int shown = std::min(10, net.num_generators());
  for (int g = 0; g < shown; ++g) {
    table.add_row({std::to_string(g), std::to_string(net.generators[g].bus),
                   Table::fixed(report.solution.pg[g] * net.base_mva, 1),
                   Table::fixed(report.solution.qg[g] * net.base_mva, 1)});
  }
  std::printf("\nDispatch (first %d generators):\n", shown);
  table.print();
  return report.converged ? 0 : 1;
}
