// Scenario sweep: build a mixed scenario family from one case (base +
// load sweep + stochastic perturbations + N-1 contingencies + a tracking
// sequence) and solve the whole set in one fused batch on the device.
//
//   ./scenario_sweep [--case=case30] [--scales=4] [--stochastic=4]
//                    [--contingencies=8] [--periods=5] [--sigma=0.03]
//                    [--warm_start_base=1] [--compare=0]
#include <cstdio>

#include "common/options.hpp"
#include "grid/cases.hpp"
#include "scenario/batch_solver.hpp"
#include "scenario/scenario_set.hpp"

int main(int argc, char** argv) {
  using namespace gridadmm;
  const Options opts(argc, argv);
  const std::string case_name = opts.get("case", "case30");

  const auto net = grid::load_case(case_name);
  std::printf("Loaded %s: %d buses, %d branches, %d generators\n", net.name.c_str(),
              net.num_buses(), net.num_branches(), net.num_generators());

  // A count of 0 disables that scenario family.
  scenario::ScenarioSet set(net);
  set.add_base();
  const int scales = opts.get_int("scales", 4);
  if (scales > 0) set.add_load_scale(scales, 0.92, 1.08);
  const int stochastic = opts.get_int("stochastic", 4);
  if (stochastic > 0) set.add_stochastic_load(stochastic, opts.get_double("sigma", 0.03), 1234);
  const int n1 = set.add_n1_contingencies(opts.get_int("contingencies", 8));
  grid::LoadProfileSpec profile;
  profile.periods = opts.get_int("periods", 5);
  if (profile.periods > 0) set.add_tracking_sequence(profile, 0.02);
  std::printf("Scenario set: %d scenarios (%d N-1 outages), %zu waves\n\n", set.size(), n1,
              set.waves().size());

  const auto params = admm::params_for_case(case_name, net.num_buses());
  scenario::BatchAdmmSolver solver(set, params);
  scenario::BatchSolveOptions options;
  // The sequential reference always runs cold, so a fair --compare defaults
  // the batched run to cold as well (override with --warm_start_base=1).
  const bool compare = opts.get_bool("compare", false);
  options.warm_start_from_base = opts.get_bool("warm_start_base", !compare);
  const auto report = solver.solve(options);
  report.print();

  if (compare) {
    if (options.warm_start_from_base) {
      std::printf("\nnote: batched run is base-warm-started, sequential is cold — "
                  "launch/time figures are not apples-to-apples\n");
    }
    std::printf("\nSequential reference (%d independent solves)...\n", set.size());
    const auto sequential = scenario::solve_sequential(set, params);
    std::printf("sequential: %.3f s, %llu launches | batched: %.3f s, %llu launches "
                "(%.2fx fewer)\n",
                sequential.solve_seconds,
                static_cast<unsigned long long>(sequential.launch_stats.launches),
                report.solve_seconds,
                static_cast<unsigned long long>(report.launch_stats.launches),
                report.launch_stats.launches > 0
                    ? static_cast<double>(sequential.launch_stats.launches) /
                          static_cast<double>(report.launch_stats.launches)
                    : 0.0);
  }
  return report.num_converged() == set.size() ? 0 : 1;
}
