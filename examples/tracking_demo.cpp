// Warm-start tracking demo (paper Section IV-C): solve a 30-period horizon
// with drifting load, warm starting each period from the last solution.
//
//   ./tracking_demo [--case=case14] [--periods=30] [--ipm=1]
#include <cstdio>

#include "common/options.hpp"
#include "common/table.hpp"
#include "opf/opf.hpp"
#include "opf/tracking.hpp"

int main(int argc, char** argv) {
  using namespace gridadmm;
  const Options opts(argc, argv);
  const std::string case_name = opts.get("case", "case14");
  const auto net = opf::load_case(case_name);

  opf::TrackingOptions options;
  options.periods = opts.get_int("periods", 30);
  options.run_ipm = opts.get_bool("ipm", true);

  opf::TrackingSimulator sim(net, admm::params_for_case(case_name, net.num_buses()), options);
  const auto records = sim.run();

  Table table(options.run_ipm
                  ? std::vector<std::string>{"t", "load", "admm s", "admm it", "viol",
                                             "gap %", "ipm s"}
                  : std::vector<std::string>{"t", "load", "admm s", "admm it", "viol"});
  double admm_total = 0.0, ipm_total = 0.0;
  for (const auto& rec : records) {
    admm_total += rec.admm_seconds;
    ipm_total += rec.ipm_seconds;
    std::vector<std::string> row{std::to_string(rec.period), Table::fixed(rec.load_scale, 4),
                                 Table::fixed(rec.admm_seconds, 3),
                                 std::to_string(rec.admm_iterations),
                                 Table::sci(rec.admm_violation, 1)};
    if (options.run_ipm) {
      row.push_back(Table::fixed(100.0 * rec.relative_gap, 3));
      row.push_back(Table::fixed(rec.ipm_seconds, 3));
    }
    table.add_row(std::move(row));
  }
  table.print();
  std::printf("\ncumulative ADMM time: %.2f s", admm_total);
  if (options.run_ipm) std::printf(" | cumulative IPM time: %.2f s", ipm_total);
  std::printf("\n");
  return 0;
}
