// Side-by-side comparison of the ADMM solver and the interior-point
// baseline on one case — a one-case slice of the paper's Table II.
//
//   ./compare_solvers [--case=case30]
#include <cstdio>

#include "common/options.hpp"
#include "common/table.hpp"
#include "grid/solution.hpp"
#include "opf/opf.hpp"

int main(int argc, char** argv) {
  using namespace gridadmm;
  const Options opts(argc, argv);
  const std::string case_name = opts.get("case", "case30");
  const auto net = opf::load_case(case_name);

  std::printf("Case %s: %d buses / %d branches / %d generators\n\n", net.name.c_str(),
              net.num_buses(), net.num_branches(), net.num_generators());

  const auto params = admm::params_for_case(case_name, net.num_buses());
  const auto admm_report = opf::solve_with_admm(net, params);
  const auto ipm_report = opf::solve_with_ipm(net);

  Table table({"solver", "time (s)", "iterations", "objective ($/h)", "||c(x)||inf", "converged"});
  auto row = [&](const opf::SolveReport& r) {
    table.add_row({r.solver, Table::fixed(r.seconds, 3), std::to_string(r.iterations),
                   Table::fixed(r.quality.objective, 2), Table::sci(r.quality.max_violation, 2),
                   r.converged ? "yes" : "no"});
  };
  row(admm_report);
  row(ipm_report);
  table.print();

  if (ipm_report.converged) {
    std::printf("\nrelative objective gap: %.4f%%\n",
                100.0 * grid::relative_gap(admm_report.quality.objective,
                                           ipm_report.quality.objective));
  }
  return 0;
}
